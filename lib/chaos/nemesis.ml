type fault_kind =
  | Crash of { site : int }
  | Partition of { groups : int list list }
  | One_way_cut of { src : int; dst : int }
  | Drop_surge of { probability : float }
  | Latency_spike of { src : int; dst : int; extra_ms : float }
  | Duplication of { probability : float }

type fault = { kind : fault_kind; at_ms : float; heal_ms : float }

type schedule = {
  seed : int;
  n_sites : int;
  duration_ms : float;
  faults : fault list;
}

let pp_kind fmt = function
  | Crash { site } -> Format.fprintf fmt "crash(site %d)" site
  | Partition { groups } ->
      Format.fprintf fmt "partition(%s)"
        (String.concat " | "
           (List.map
              (fun group -> String.concat "," (List.map string_of_int group))
              groups))
  | One_way_cut { src; dst } -> Format.fprintf fmt "one-way-cut(%d -> %d)" src dst
  | Drop_surge { probability } -> Format.fprintf fmt "drop-surge(p=%.2f)" probability
  | Latency_spike { src; dst; extra_ms } ->
      Format.fprintf fmt "latency-spike(%d -> %d, +%.0f ms)" src dst extra_ms
  | Duplication { probability } -> Format.fprintf fmt "duplication(p=%.2f)" probability

let pp_fault fmt { kind; at_ms; heal_ms } =
  Format.fprintf fmt "@[t=%8.0f ms .. %8.0f ms  %a@]" at_ms heal_ms pp_kind kind

let pp fmt t =
  Format.fprintf fmt "@[<v>nemesis schedule (seed %d, %d sites, %.0f ms):" t.seed
    t.n_sites t.duration_ms;
  List.iter (fun fault -> Format.fprintf fmt "@,  %a" pp_fault fault) t.faults;
  Format.fprintf fmt "@]"

(* A random two-group split with both sides non-empty. *)
let random_partition rng n_sites =
  let order = Array.init n_sites (fun i -> i) in
  Des.Rng.shuffle rng order;
  let cut = 1 + Des.Rng.int rng (n_sites - 1) in
  let a = ref [] and b = ref [] in
  Array.iteri (fun i site -> if i < cut then a := site :: !a else b := site :: !b) order;
  [ List.sort compare !a; List.sort compare !b ]

let random_link rng n_sites =
  let src = Des.Rng.int rng n_sites in
  let dst = (src + 1 + Des.Rng.int rng (n_sites - 1)) mod n_sites in
  (src, dst)

let generate ~seed ~n_sites ~duration_ms =
  if n_sites < 2 then invalid_arg "Nemesis.generate: need at least 2 sites";
  if duration_ms <= 0.0 then invalid_arg "Nemesis.generate: non-positive duration";
  let rng = Des.Rng.create (Int64.of_int seed) in
  (* Fault density scales with the run length; every fault heals by 70% of
     the run so the tail is a guaranteed quiet window for recovery,
     catch-up and the quiescent audit. *)
  let n_faults =
    max 3 (int_of_float (duration_ms /. 30_000.0)) + Des.Rng.int rng 3
  in
  let faults =
    List.init n_faults (fun _ ->
        let at_ms = duration_ms *. (0.05 +. Des.Rng.float rng 0.55) in
        let hold_ms = duration_ms *. (0.04 +. Des.Rng.float rng 0.20) in
        let heal_ms = Float.min (at_ms +. hold_ms) (duration_ms *. 0.7) in
        let kind =
          match Des.Rng.int rng 6 with
          | 0 -> Crash { site = Des.Rng.int rng n_sites }
          | 1 -> Partition { groups = random_partition rng n_sites }
          | 2 ->
              let src, dst = random_link rng n_sites in
              One_way_cut { src; dst }
          | 3 -> Drop_surge { probability = 0.2 +. Des.Rng.float rng 0.6 }
          | 4 ->
              let src, dst = random_link rng n_sites in
              Latency_spike { src; dst; extra_ms = 100.0 +. Des.Rng.float rng 400.0 }
          | _ -> Duplication { probability = 0.1 +. Des.Rng.float rng 0.4 }
        in
        { kind; at_ms; heal_ms })
    |> List.sort (fun a b -> compare a.at_ms b.at_ms)
  in
  { seed; n_sites; duration_ms; faults }

let spike_partition ~site ~n_sites ~at_ms ~heal_ms ~duration_ms =
  if n_sites < 2 then invalid_arg "Nemesis.spike_partition: need at least 2 sites";
  if site < 0 || site >= n_sites then
    invalid_arg "Nemesis.spike_partition: site outside [0, n_sites)";
  if not (0.0 <= at_ms && at_ms < heal_ms && heal_ms <= duration_ms) then
    invalid_arg "Nemesis.spike_partition: need 0 <= at < heal <= duration";
  let rest =
    List.filter (fun s -> s <> site) (List.init n_sites (fun s -> s))
  in
  {
    seed = 0;
    n_sites;
    duration_ms;
    faults =
      [ { kind = Partition { groups = [ [ site ]; rest ] }; at_ms; heal_ms } ];
  }

let crash_faults t =
  List.filter_map
    (function
      | { kind = Crash { site }; at_ms; heal_ms } -> Some (site, at_ms, heal_ms)
      | _ -> None)
    t.faults
