let entity = "VM"

type report = {
  seed : int;
  variant : Samya.Config.variant;
  amnesia : bool;
  sync : Storage.Durable.sync_policy;
  schedule : Nemesis.schedule;
  injected : int;
  healed : int;
  granted : int;
  rejected : int;
  unavailable : int;
  redistributions : int;
  recovery_probes : (int * float) list;
  durable_syncs : int;
  duplicated : int;
  violations : Auditor.violation list;
}

let passed report = report.violations = []

let variant_name = function
  | Samya.Config.Majority -> "majority"
  | Samya.Config.Star -> "star"

let sync_name = function
  | Storage.Durable.Sync_always -> "always"
  | Storage.Durable.Sync_batched n -> Printf.sprintf "batched:%d" n
  | Storage.Durable.Sync_never -> "never"

let repro_line report =
  Printf.sprintf "samya_cli chaos --seed %d --variant %s%s%s" report.seed
    (variant_name report.variant)
    (if report.amnesia then "" else " --freeze")
    (match report.sync with
    | Storage.Durable.Sync_always -> ""
    | Storage.Durable.Sync_batched _ -> " --sync batched"
    | Storage.Durable.Sync_never -> " --sync never")

let pp_report fmt report =
  Format.fprintf fmt "@[<v>%a@," Nemesis.pp report.schedule;
  Format.fprintf fmt
    "variant=%s model=%s sync=%s  faults=%d/%d  granted=%d rejected=%d \
     unavailable=%d  redistributions=%d  syncs=%d dup-deliveries=%d@,"
    (variant_name report.variant)
    (if report.amnesia then "crash-amnesia" else "freeze")
    (sync_name report.sync) report.injected report.healed report.granted
    report.rejected report.unavailable report.redistributions report.durable_syncs
    report.duplicated;
  (match report.recovery_probes with
  | [] -> ()
  | probes ->
      Format.fprintf fmt "recovery-to-service:";
      List.iter
        (fun (site, ms) -> Format.fprintf fmt " site%d=%.0fms" site ms)
        probes;
      Format.fprintf fmt "@,");
  (match report.violations with
  | [] -> Format.fprintf fmt "auditor: OK@]"
  | violations ->
      Format.fprintf fmt "auditor: %d VIOLATION(S)@," (List.length violations);
      List.iter (fun v -> Format.fprintf fmt "  %a@," Auditor.pp_violation v) violations;
      Format.fprintf fmt "repro: %s@]" (repro_line report))

(* One client loop per region: acquires with bounded-outstanding releases,
   all randomness from a stream split off the seed so the whole run —
   workload, cluster, fault schedule — replays from one integer. Clients
   speak the facade verbs only (the entity is bound at construction). *)
let spawn_client ~engine ~(facade : Facade.t) ~rng ~region ~duration_ms ~granted
    ~rejected ~unavailable =
  let outstanding = ref 0 in
  let count = function
    | Samya.Types.Granted -> incr granted
    | Samya.Types.Rejected | Samya.Types.Rejected_deadline -> incr rejected
    | Samya.Types.Unavailable -> incr unavailable
    | Samya.Types.Read_result _ -> ()
  in
  let rec step () =
    let delay = Des.Rng.exponential rng ~rate:(1.0 /. 120.0) in
    Des.Engine.schedule engine ~delay_ms:delay (fun () ->
        if Des.Engine.now engine < duration_ms then begin
          (if !outstanding > 0 && Des.Rng.bool rng 0.4 then begin
             (* Never release more than this client still holds, or the
                auditor would see client-caused negative acquisition. *)
             let amount = 1 + Des.Rng.int rng (min 3 !outstanding) in
             outstanding := !outstanding - amount;
             facade.Facade.release ~region ~amount ~reply:count
           end
           else
             let amount = 1 + Des.Rng.int rng 4 in
             facade.Facade.acquire ~region ~amount ~reply:(fun response ->
                 count response;
                 if response = Samya.Types.Granted then
                   outstanding := !outstanding + amount));
          step ()
        end)
  in
  step ()

let run ?(n_sites = 5) ?(duration_ms = 120_000.0) ?(maximum = 5_000)
    ?(amnesia = true) ?(sync = Storage.Durable.Sync_always) ?(engine_jobs = 0)
    ~variant ~seed () =
  let schedule = Nemesis.generate ~seed ~n_sites ~duration_ms in
  let root = Des.Rng.create (Int64.of_int seed) in
  let cluster_seed = Des.Rng.bits64 root in
  let config =
    {
      Samya.Config.default with
      variant;
      amnesia_on_crash = amnesia;
      durability_sync = sync;
    }
  in
  let all_regions = Array.of_list Geonet.Region.all in
  let regions =
    Array.init n_sites (fun i -> all_regions.(i mod Array.length all_regions))
  in
  let auditor = Auditor.create ~variant () in
  let hooks =
    Facade.samya_hooks
      ~on_protocol_event:(fun ~site ~entity:_ event ->
        Auditor.on_protocol_event auditor ~site event)
      ()
  in
  let cluster =
    Samya.Cluster.create ~seed:cluster_seed ~config ~regions ~engine_jobs
      ~on_protocol_event:(Facade.protocol_event_hook hooks)
      ~obs:(Facade.obs_port hooks) ()
  in
  (* The auditor taps every site's protocol stream into one shared
     structure and the client counters span regions, so a sharded soak
     drains its windows sequentially (same rule as observability): the
     windowed scheduler, cross-lane channels and barrier-aligned faults
     are all exercised, without cross-lane data races — and the report
     is byte-identical at every [engine_jobs] setting. *)
  Option.iter Des.Shard.force_sequential (Samya.Cluster.shard cluster);
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  (* Clients and the fault injector drive the cluster through the same
     facade record the experiment harness uses; only the quiescent audit
     and the recovery probes reach inside (the probes bypass routing on
     purpose — they must target the recovered site itself). *)
  let facade = Facade.of_samya_cluster ~hooks ~regions ~entity cluster in
  let network = Samya.Cluster.network cluster in
  let injector =
    Injector.install ~schedule_at:facade.Facade.schedule_global ~network
      ~crash:facade.Facade.crash_site
      ~recover:(fun site ->
        Auditor.note_recovery auditor ~site;
        facade.Facade.recover_site site)
      schedule
  in
  (* Recovery-to-service probes: right after each crash heals, one direct
     acquire against the recovered site measures how long until it answers
     anything at all. *)
  let recovery_probes = ref [] in
  List.iter
    (fun (site, _at_ms, heal_ms) ->
      (* [submit_to_site] calls straight into the site, so the probe must
         fire on the site's own lane; its reply also lands there. *)
      let probe_engine = facade.Facade.sched_region regions.(site) in
      Des.Engine.schedule_at probe_engine ~time_ms:(heal_ms +. 1.0) (fun () ->
          let sent = Des.Engine.now probe_engine in
          Samya.Cluster.submit_to_site cluster ~site
            (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
            ~reply:(fun _ ->
              recovery_probes :=
                (site, Des.Engine.now probe_engine -. sent) :: !recovery_probes)))
    (Nemesis.crash_faults schedule);
  let granted = ref 0 and rejected = ref 0 and unavailable = ref 0 in
  Array.iter
    (fun region ->
      let rng = Des.Rng.split root in
      spawn_client
        ~engine:(facade.Facade.sched_region region)
        ~facade ~rng ~region ~duration_ms ~granted ~rejected ~unavailable)
    regions;
  (* Drain: traffic stops at [duration_ms] and every fault healed by 70%
     of it; the tail covers in-flight instances, recovery catch-up and a
     few anti-entropy rounds before the quiescent audit. The engine never
     runs dry on its own (gossip reschedules forever), hence the explicit
     horizon. *)
  let drain_ms = Float.max 240_000.0 (4.0 *. config.Samya.Config.anti_entropy_ms) in
  facade.Facade.run_until (duration_ms +. drain_ms);
  let violations =
    Auditor.check_cluster auditor cluster ~entity ~maximum ~quiescent:true
  in
  let durable_syncs =
    Array.fold_left
      (fun acc site -> acc + Samya.Site.durable_syncs site)
      0 (Samya.Cluster.sites cluster)
  in
  {
    seed;
    variant;
    amnesia;
    sync;
    schedule;
    injected = Injector.injected injector;
    healed = Injector.healed injector;
    granted = !granted;
    rejected = !rejected;
    unavailable = !unavailable;
    redistributions = Samya.Cluster.total_redistributions cluster;
    recovery_probes = List.rev !recovery_probes;
    durable_syncs;
    duplicated = Geonet.Network.stats_duplicated network;
    violations;
  }
