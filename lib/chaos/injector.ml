module N = Geonet.Network

(* Faults overlap, so healing one must not undo another that is still
   active: crashes and one-way cuts are reference-counted, while the
   scalar knobs (drop rate, duplication, per-link latency, partition) are
   recomputed from the set of still-active faults after every change. *)
type 'msg t = {
  network : 'msg N.t;
  crash : int -> unit;
  recover : int -> unit;
  base_drop : float;
  crash_depth : int array;
  cut_depth : (int * int, int) Hashtbl.t;
  mutable active : (int * Nemesis.fault_kind) list; (* id, fault — newest first *)
  mutable next_id : int;
  mutable injected : int;
  mutable healed : int;
}

let create ~network ~crash ~recover () =
  {
    network;
    crash;
    recover;
    base_drop = N.drop_probability network;
    crash_depth = Array.make (N.node_count network) 0;
    cut_depth = Hashtbl.create 8;
    active = [];
    next_id = 0;
    injected = 0;
    healed = 0;
  }

let injected t = t.injected
let healed t = t.healed

let refresh_drop t =
  let p =
    List.fold_left
      (fun acc -> function
        | _, Nemesis.Drop_surge { probability } -> Float.max acc probability
        | _ -> acc)
      t.base_drop t.active
  in
  N.set_drop_probability t.network p

let refresh_duplication t =
  let p =
    List.fold_left
      (fun acc -> function
        | _, Nemesis.Duplication { probability } -> Float.max acc probability
        | _ -> acc)
      0.0 t.active
  in
  N.set_duplicate_probability t.network p

let refresh_latency t ~src ~dst =
  let extra =
    List.fold_left
      (fun acc -> function
        | _, Nemesis.Latency_spike { src = s; dst = d; extra_ms }
          when s = src && d = dst ->
            Float.max acc extra_ms
        | _ -> acc)
      0.0 t.active
  in
  N.set_link_extra_latency t.network ~src ~dst extra

let refresh_partition t =
  (* The most recently injected still-active partition wins (the network
     holds a single partition assignment). *)
  let groups =
    List.find_map
      (function _, Nemesis.Partition { groups } -> Some groups | _ -> None)
      t.active
  in
  match groups with
  | Some groups -> N.set_partition t.network groups
  | None -> N.clear_partition t.network

let start t kind =
  match kind with
  | Nemesis.Crash { site } ->
      t.crash_depth.(site) <- t.crash_depth.(site) + 1;
      if t.crash_depth.(site) = 1 then t.crash site
  | Nemesis.One_way_cut { src; dst } ->
      let depth = Option.value (Hashtbl.find_opt t.cut_depth (src, dst)) ~default:0 in
      Hashtbl.replace t.cut_depth (src, dst) (depth + 1);
      if depth = 0 then N.block_one_way t.network ~src ~dst
  | Nemesis.Partition _ -> refresh_partition t
  | Nemesis.Drop_surge _ -> refresh_drop t
  | Nemesis.Latency_spike { src; dst; _ } -> refresh_latency t ~src ~dst
  | Nemesis.Duplication _ -> refresh_duplication t

let heal t kind =
  match kind with
  | Nemesis.Crash { site } ->
      t.crash_depth.(site) <- t.crash_depth.(site) - 1;
      if t.crash_depth.(site) = 0 then t.recover site
  | Nemesis.One_way_cut { src; dst } ->
      let depth = Option.value (Hashtbl.find_opt t.cut_depth (src, dst)) ~default:1 in
      Hashtbl.replace t.cut_depth (src, dst) (depth - 1);
      if depth = 1 then N.unblock_one_way t.network ~src ~dst
  | Nemesis.Partition _ -> refresh_partition t
  | Nemesis.Drop_surge _ -> refresh_drop t
  | Nemesis.Latency_spike { src; dst; _ } -> refresh_latency t ~src ~dst
  | Nemesis.Duplication _ -> refresh_duplication t

(* [schedule_at] is the caller's scheduling slot: a plain engine
   [schedule_at] on a legacy system, the facade's barrier-aligned
   [schedule_global] on a region-sharded one (every fault mutates state
   all lanes read, so it must run between windows there). *)
let install ?on_fault ~schedule_at ~network ~crash ~recover
    (schedule : Nemesis.schedule) =
  let t = create ~network ~crash ~recover () in
  List.iter
    (fun (fault : Nemesis.fault) ->
      let id = t.next_id in
      t.next_id <- id + 1;
      schedule_at ~time_ms:fault.Nemesis.at_ms (fun () ->
          t.injected <- t.injected + 1;
          t.active <- (id, fault.Nemesis.kind) :: t.active;
          start t fault.Nemesis.kind;
          match on_fault with Some f -> f fault `Inject | None -> ());
      schedule_at ~time_ms:fault.Nemesis.heal_ms (fun () ->
          t.healed <- t.healed + 1;
          t.active <- List.filter (fun (i, _) -> i <> id) t.active;
          heal t fault.Nemesis.kind;
          match on_fault with Some f -> f fault `Heal | None -> ()))
    schedule.Nemesis.faults;
  t
