module Ballot = Consensus.Ballot

type violation = { check : string; site : int option; detail : string }

let pp_violation fmt { check; site; detail } =
  match site with
  | Some site -> Format.fprintf fmt "[%s] site %d: %s" check site detail
  | None -> Format.fprintf fmt "[%s] %s" check detail

type t = {
  variant : Samya.Config.variant;
  last_decided : (int, Ballot.t) Hashtbl.t;
      (* per site, the last origin its protocol instance applied in its
         current incarnation; reset on recovery, since a rolled-back site
         may legitimately re-apply instances its ledger lost *)
  mutable live : violation list;
}

let create ~variant () = { variant; last_decided = Hashtbl.create 8; live = [] }

let record t violation = t.live <- violation :: t.live

(* Anytime check, fed from the protocol event stream: with carried accept
   state (Avantan[(n+1)/2]) a site applies decisions in strictly
   increasing origin order within one incarnation — Avantan[*] instances
   are independent and may decide out of ballot order, so the check is
   variant-gated. *)
let on_protocol_event t ~site event =
  match (t.variant, event) with
  | Samya.Config.Majority, Samya.Avantan_core.Decided { origin; _ } -> (
      match Hashtbl.find_opt t.last_decided site with
      | Some previous when not Ballot.(origin > previous) ->
          record t
            {
              check = "monotone-decided-prefix";
              site = Some site;
              detail =
                Format.asprintf "applied %a after %a without an intervening recovery"
                  Ballot.pp origin Ballot.pp previous;
            }
      | Some _ | None -> Hashtbl.replace t.last_decided site origin)
  | _ -> ()

let note_recovery t ~site = Hashtbl.remove t.last_decided site

let live_violations t = List.rev t.live

(* Decided-log checks, safe at any point (the logs only grow):
   - per site, no origin may appear twice (each instance moves tokens
     exactly once);
   - across sites, two values recorded under one origin must be equal —
     divergence means a ballot was reused for different values, which is
     exactly the Paxos violation lost promises produce under weak sync. *)
let check_logs logs =
  let violations = ref [] in
  let canonical : (Ballot.t, int * Samya.Protocol.value) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (site, log) ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (value : Samya.Protocol.value) ->
          let origin = value.Samya.Protocol.origin in
          if Hashtbl.mem seen origin then
            violations :=
              {
                check = "duplicate-origin";
                site = Some site;
                detail =
                  Format.asprintf "origin %a recorded twice in the decided log"
                    Ballot.pp origin;
              }
              :: !violations
          else Hashtbl.replace seen origin ();
          match Hashtbl.find_opt canonical origin with
          | None -> Hashtbl.replace canonical origin (site, value)
          | Some (first_site, first_value) ->
              if not (Samya.Protocol.value_equal first_value value) then
                violations :=
                  {
                    check = "value-consistency";
                    site = Some site;
                    detail =
                      Format.asprintf
                        "origin %a decided differently here than at site %d"
                        Ballot.pp origin first_site;
                  }
                  :: !violations)
        log)
    logs;
  List.rev !violations

let check_cluster t cluster ~entity ~maximum ~quiescent =
  let logs =
    List.init (Samya.Cluster.n_sites cluster) (fun i ->
        (i, Samya.Site.decided_log (Samya.Cluster.site cluster i) ~entity))
  in
  let log_violations = check_logs logs in
  let conservation =
    if not quiescent then []
    else
      match Samya.Cluster.check_invariant cluster ~entity ~maximum with
      | Ok () -> []
      | Error detail -> [ { check = "token-conservation"; site = None; detail } ]
  in
  live_violations t @ log_violations @ conservation
