(** Turns a {!Nemesis.schedule} into scheduled fault actions against a
    {!Geonet.Network} and a pair of crash/recover callbacks.

    Overlapping faults compose: crashes and one-way cuts are
    reference-counted (a site recovers only when its last overlapping
    crash heals), and the scalar knobs — global drop rate, duplication
    probability, per-link extra latency, the partition assignment — are
    recomputed from the still-active fault set after every injection and
    heal, so healing one fault never silently undoes another. *)

type 'msg t

val install :
  ?on_fault:(Nemesis.fault -> [ `Inject | `Heal ] -> unit) ->
  schedule_at:(time_ms:float -> (unit -> unit) -> unit) ->
  network:'msg Geonet.Network.t ->
  crash:(int -> unit) ->
  recover:(int -> unit) ->
  Nemesis.schedule ->
  'msg t
(** Schedules every fault's injection and heal through [schedule_at] —
    pass {!Des.Engine.schedule_at} on a legacy system or the facade's
    barrier-aligned [schedule_global] on a sharded one (faults mutate
    state every lane reads). [crash] and [recover] act on site indices
    (wire to {!Samya.Cluster.crash_site} / [recover_site]); [on_fault]
    observes both edges of every fault. *)

val injected : _ t -> int
val healed : _ t -> int
