(** The chaos invariant auditor.

    Three families of checks:

    - {b token conservation} (Equation 1): summed over sites,
      [tokens_left + acquired_net = maximum] and [0 <= acquired <= maximum]
      — only meaningful at quiescence (no decision deliveries in flight),
      so gated behind [quiescent:true];
    - {b decided-log integrity}, safe at any time: no origin applied twice
      at one site, and any two sites that recorded a value under the same
      origin recorded {e equal} values (divergence is the ballot-reuse
      Paxos violation that lost promises produce under weak durability);
    - {b monotone decided prefixes}, fed live from the protocol event
      stream: an Avantan[(n+1)/2] site applies decisions in strictly
      increasing origin order within one incarnation (Avantan[*] instances
      are independent, so the check is variant-gated). *)

type violation = { check : string; site : int option; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val create : variant:Samya.Config.variant -> unit -> t

val on_protocol_event : t -> site:int -> Samya.Avantan_core.event -> unit
(** Wire to {!Samya.Cluster.create}'s [on_protocol_event]. *)

val note_recovery : t -> site:int -> unit
(** A site recovered: reset its monotonicity baseline (a crash-amnesiac
    site may legitimately re-apply instances its rolled-back ledger
    lost). *)

val live_violations : t -> violation list
(** Violations collected from the event stream so far. *)

val check_logs : (int * Samya.Protocol.value list) list -> violation list
(** Decided-log checks over [(site, log)] pairs; callable mid-run. *)

val check_cluster :
  t ->
  Samya.Cluster.t ->
  entity:Samya.Types.entity ->
  maximum:int ->
  quiescent:bool ->
  violation list
(** Everything at once: live violations, log checks over every site's
    decided log, and — when [quiescent] — token conservation. *)
