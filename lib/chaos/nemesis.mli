(** Seed-driven fault-schedule generation.

    A schedule is a pure function of [(seed, n_sites, duration_ms)]:
    generating twice with the same inputs yields the same faults, which is
    what makes every chaos run reproducible from the one printed seed. The
    schedule composes crash/restart cycles, symmetric partitions, one-way
    link cuts, drop-rate surges, per-link latency spikes and message
    duplication; every fault heals by 70% of the run, leaving a guaranteed
    quiet tail for recovery, catch-up and the quiescent audit. *)

type fault_kind =
  | Crash of { site : int }
  | Partition of { groups : int list list }
  | One_way_cut of { src : int; dst : int }
  | Drop_surge of { probability : float }
  | Latency_spike of { src : int; dst : int; extra_ms : float }
  | Duplication of { probability : float }

type fault = { kind : fault_kind; at_ms : float; heal_ms : float }

type schedule = {
  seed : int;
  n_sites : int;
  duration_ms : float;
  faults : fault list;  (** sorted by injection time *)
}

val generate : seed:int -> n_sites:int -> duration_ms:float -> schedule
(** Deterministic. Raises [Invalid_argument] on [n_sites < 2] or a
    non-positive duration. *)

val spike_partition :
  site:int -> n_sites:int -> at_ms:float -> heal_ms:float -> duration_ms:float -> schedule
(** A one-fault schedule partitioning [site] away from every peer over
    [\[at_ms, heal_ms)] — the retry-storm scenario's targeted fault (the
    hot entity's home region loses its quorum during the flash sale).
    Raises [Invalid_argument] on [n_sites < 2], a [site] out of range, or
    [at_ms]/[heal_ms] not satisfying [0 <= at < heal <= duration]. *)

val crash_faults : schedule -> (int * float * float) list
(** [(site, at_ms, heal_ms)] for every crash in the schedule (recovery
    probes target these). *)

val pp : Format.formatter -> schedule -> unit
val pp_fault : Format.formatter -> fault -> unit
