(** Online SLO monitor over tumbling windows.

    Each monitored system feeds every client-visible outcome in: committed
    requests with their latency, aborted ones (rejected / unavailable)
    bare. Samples land in the current tumbling window (default 10 s of
    virtual time) {e and} a cumulative {!Quantile_sketch}; when the clock
    crosses a window boundary the window is evaluated against every
    objective — a latency objective is violated when the window's sketch
    quantile exceeds its target, an abort-rate objective when the window's
    abort fraction exceeds its cap. Windows with no traffic neither pass
    nor fail.

    Everything is deterministic in virtual time, so reports are
    byte-reproducible across [--jobs]. *)

type objective =
  | Latency of { name : string; q : float; target_ms : float }
  | Abort_rate of { name : string; max_rate : float }

val default_objectives : objective list
(** p50 ≤ 250 ms, p95 ≤ 2 s, p99 ≤ 10 s, abort rate ≤ 5% — chosen so a
    system that serves most operations locally passes and one paying a
    WAN round (or shedding) per operation does not. *)

type t

val create : ?window_ms:float -> ?objectives:objective list -> unit -> t

val window_ms : t -> float

val commit : t -> now_ms:float -> latency_ms:float -> unit

val abort : ?cls:string -> t -> now_ms:float -> unit
(** [cls] attributes the abort to a cause ("rejected", "unavailable",
    "shed", "timeout", ...) for the breakdown below; it does not affect
    any objective. *)

val on_violation :
  t ->
  (name:string ->
  window_start_ms:float ->
  window_end_ms:float ->
  value:float ->
  target:float ->
  unit) ->
  unit
(** Install a breach hook, fired once per violated objective as each
    window closes (including the final partial window at {!flush} /
    {!report} time). Used to feed the flight recorder. *)

val flush : t -> unit
(** Close and evaluate the in-progress window without producing a
    report — call when the run ends so breach hooks fire before the
    recorder is dumped. A later {!report} sees an empty window and
    counts nothing twice. *)

val abort_classes : t -> (string * int) list
(** Cumulative abort counts by cause, sorted by class name; only aborts
    fed with [~cls] appear. *)

type report_line = {
  name : string;
  kind : string;  (** ["latency"] or ["abort_rate"] *)
  q : float;  (** quantile for latency objectives, [nan] otherwise *)
  target : float;  (** ms for latency, a fraction for abort rate *)
  windows : int;  (** evaluated (non-empty) windows *)
  violations : int;
  worst : float;  (** worst window value seen, [nan] if none evaluated *)
  overall : float;  (** whole-run value from the cumulative sketch *)
}

val report : t -> report_line list
(** Closes (and evaluates) the in-progress window first — call once at
    the end of a run. Lines appear in objective order. *)

val healthy : report_line list -> bool
(** No objective saw a violated window. *)
