(* Log-bucketed histogram geometry: bucket 0 holds v <= lo, bucket i holds
   lo * gamma^(i-1) < v <= lo * gamma^i. With gamma = 2^(1/4) and 160
   buckets the range runs from 1e-3 up past 1e9 — nine decades at <10%
   relative quantile error. *)
let lo = 0.001
let gamma = Float.pow 2.0 0.25
let n_buckets = 160
let inv_log_gamma = 1.0 /. Float.log gamma

let bucket_of v =
  if not (v > lo) then 0
  else
    let i = 1 + int_of_float (Float.floor (Float.log (v /. lo) *. inv_log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

let bucket_upper_bound i = if i <= 0 then lo else lo *. Float.pow gamma (float_of_int i)

type counter = { c_name : string; mutable c_value : int; c_live : bool }

type gauge = {
  g_name : string;
  mutable g_last : float;
  mutable g_max : float;
  mutable g_written : bool;
  g_live : bool;
}

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_live : bool;
}

type t = {
  enabled : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let null = create ~enabled:false ()
let enabled t = t.enabled

let dead_counter = { c_name = ""; c_value = 0; c_live = false }

let dead_gauge =
  { g_name = ""; g_last = 0.0; g_max = 0.0; g_written = false; g_live = false }

let dead_histogram =
  {
    h_name = "";
    h_buckets = [||];
    h_count = 0;
    h_sum = 0.0;
    h_min = Float.nan;
    h_max = Float.nan;
    h_live = false;
  }

let intern table ~dead ~make t name =
  if not t.enabled then dead
  else
    match Hashtbl.find_opt table name with
    | Some cell -> cell
    | None ->
        let cell = make name in
        Hashtbl.add table name cell;
        cell

let counter t name =
  intern t.counters ~dead:dead_counter
    ~make:(fun c_name -> { c_name; c_value = 0; c_live = true })
    t name

let incr c = if c.c_live then c.c_value <- c.c_value + 1
let add c n = if c.c_live then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge t name =
  intern t.gauges ~dead:dead_gauge
    ~make:(fun g_name ->
      { g_name; g_last = 0.0; g_max = 0.0; g_written = false; g_live = true })
    t name

let set g v =
  if g.g_live then begin
    g.g_last <- v;
    if (not g.g_written) || v > g.g_max then g.g_max <- v;
    g.g_written <- true
  end

let gauge_value g = if g.g_written then Some g.g_last else None
let gauge_max g = if g.g_written then Some g.g_max else None

let histogram t name =
  intern t.histograms ~dead:dead_histogram
    ~make:(fun h_name ->
      {
        h_name;
        h_buckets = Array.make n_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.nan;
        h_max = Float.nan;
        h_live = true;
      })
    t name

let observe h v =
  if h.h_live && not (Float.is_nan v) then begin
    let i = bucket_of v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if h.h_count = 1 then begin
      h.h_min <- v;
      h.h_max <- v
    end
    else begin
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end
  end

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (int * int) list;
}

let snapshot_histogram h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
  done;
  { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets = !buckets }

let merge a b =
  let rec merge_buckets xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (i, ci) :: xs', (j, cj) :: ys' ->
        if i < j then (i, ci) :: merge_buckets xs' ys
        else if j < i then (j, cj) :: merge_buckets xs ys'
        else (i, ci + cj) :: merge_buckets xs' ys'
  in
  let pick_min a b =
    if Float.is_nan a then b else if Float.is_nan b then a else Float.min a b
  in
  let pick_max a b =
    if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b
  in
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = pick_min a.min b.min;
    max = pick_max a.max b.max;
    buckets = merge_buckets a.buckets b.buckets;
  }

let quantile s q =
  if s.count = 0 then Float.nan
  else
    let target =
      let t = int_of_float (Float.ceil (q *. float_of_int s.count)) in
      if t < 1 then 1 else if t > s.count then s.count else t
    in
    let rec scan acc = function
      | [] -> s.max
      | (i, c) :: rest ->
          let acc = acc + c in
          if acc >= target then bucket_upper_bound i else scan acc rest
    in
    scan 0 s.buckets

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float * float) list;
  histograms : (string * histogram_snapshot) list;
}

let sorted_values table key =
  Hashtbl.fold (fun _ v acc -> v :: acc) table []
  |> List.sort (fun a b -> String.compare (key a) (key b))

let snapshot (t : t) : snapshot =
  {
    counters =
      sorted_values t.counters (fun c -> c.c_name)
      |> List.map (fun c -> (c.c_name, c.c_value));
    gauges =
      sorted_values t.gauges (fun g -> g.g_name)
      |> List.filter (fun g -> g.g_written)
      |> List.map (fun g -> (g.g_name, g.g_last, g.g_max));
    histograms =
      sorted_values t.histograms (fun h -> h.h_name)
      |> List.map (fun h -> (h.h_name, snapshot_histogram h));
  }
