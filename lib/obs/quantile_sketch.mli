(** Deterministic mergeable streaming quantile sketch.

    A fixed-geometry log-bucket histogram (gamma = 2{^1/8}, 320 buckets
    from 1e-3 up past 1e9): inserting is one bucket increment, and
    {!quantile} answers any rank query with bounded {e relative} error —
    the reported value [v'] for the exact nearest-rank value [v]
    satisfies [v <= v' < v * gamma] whenever [v > 1e-3] (clamped to the
    observed min/max at the extremes).

    {!merge} is total, associative and commutative — two sketches fed
    disjoint halves of a stream merge into exactly the sketch of the whole
    stream, which is what lets per-window and per-system sketches combine
    without re-reading samples. No sum is tracked: the state is integral
    (buckets + count) plus min/max, so the algebra holds exactly, not just
    approximately. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** NaN samples are ignored. *)

val merge : t -> t -> t
(** Functional: inputs are unchanged. *)

val equal : t -> t -> bool

val count : t -> int

val min_value : t -> float
(** [nan] while empty, likewise {!max_value}. *)

val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]]; nearest-rank on the bucket
    cumulative counts, reported as the bucket's upper bound clamped into
    [[min, max]]. [nan] on an empty sketch. *)

val gamma : float
(** The bucket growth factor — the relative-error bound of {!quantile}. *)

val bucket_of : float -> int
val bucket_upper_bound : int -> float
