(** Causal request-lifecycle log.

    While spans render timelines and metrics aggregate, the causal log
    keeps the {e lineage} of each request: which site accepted it, when it
    sat in an entity queue, which protocol phases and WAN hops ran on its
    behalf, and when the client saw the outcome. {!Critical_path} walks
    this log to attribute end-to-end latency to named components.

    Traces and edges are plain [int]s issued by the simulation layer
    ([Des.Engine.fresh_id]); this module stays dependency-free and gives
    them no interpretation beyond equality. All timestamps are virtual
    milliseconds; recording order is deterministic, so the log is
    byte-reproducible like the other recorders. *)

type event =
  | Submitted of {
      trace : int;
      client : int;
      kind : string;
      entity : string;
      ts : float;
    }
      (** root stamped by the workload driver; [kind] is the verb and
          [entity] the aggregate object it targets ([""] when the driven
          system serves a single implicit entity) *)
  | Accepted of { trace : int; site : int; ts : float }
      (** the request reached its serving site (client WAN leg done) *)
  | Enqueued of { trace : int; site : int; label : string; ts : float }
      (** parked in a queue named [label] (e.g. ["redistribution"]) *)
  | Dequeued of { trace : int; site : int; ts : float }
  | Wait of { trace : int; site : int; label : string; t0 : float; t1 : float }
      (** a named wait window recorded at its end (e.g. ["cpu"], ["read"]) *)
  | Service of { trace : int; site : int; t0 : float; t1 : float }
      (** local processing on the site CPU *)
  | Phase of { trace : int; site : int; name : string; t0 : float; t1 : float }
      (** a protocol phase run on behalf of the trace *)
  | Hop of { trace : int; edge : int; src : int; dst : int; t0 : float; t1 : float }
      (** one WAN message delivery; [edge] is the causal edge id *)
  | Completed of { trace : int; outcome : string; ts : float }
      (** the client observed the outcome (["granted"] / ["rejected"] /
          ["unavailable"]) *)

type t

val create : ?enabled:bool -> unit -> t
val null : t
val enabled : t -> bool

val record : t -> event -> unit
(** No-op on a disabled log. *)

val events : t -> event list
(** In arrival order. *)

val event_count : t -> int
val trace_of : event -> int
