(** Process-local metric registry: named counters, gauges and log-bucketed
    histograms.

    Instruments are interned by name — looking one up twice returns the same
    mutable cell, so hot paths can resolve an instrument once and update it
    with a field write. A registry created with [null] (or
    [create ~enabled:false]) hands out dead instruments whose updates are a
    single load-and-branch; nothing is recorded and nothing allocates.

    Histograms use logarithmic buckets (ratio [2^(1/4)] ≈ 19% per bucket,
    first boundary at 0.001), which keeps relative quantile error under ~10%
    across nine decades — enough for microsecond-to-hour latencies in ms
    units. Bucket counts are integers, so {!merge} is exactly associative
    and commutative on everything except the float [sum]. *)

type t

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [true]. *)

val null : t
(** Shared disabled registry: instruments are dead, updates are no-ops. *)

val enabled : t -> bool

(** {2 Counters} — monotonic integer totals. *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} — last-written value plus the running maximum. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float option
val gauge_max : gauge -> float option

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
(** Values [<= 0] land in the first bucket; NaN is ignored. *)

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  buckets : (int * int) list;
      (** sparse [(bucket index, count)], ascending, zeros omitted *)
}

val snapshot_histogram : histogram -> histogram_snapshot

val bucket_upper_bound : int -> float
(** Upper boundary of bucket [i] (values [v <= bound] fall at or below it). *)

val merge : histogram_snapshot -> histogram_snapshot -> histogram_snapshot
(** Pointwise sum; associative and commutative up to float rounding of
    [sum] (all integer fields are exact). *)

val quantile : histogram_snapshot -> float -> float
(** [quantile s q] for [q] in [0, 1]: upper bound of the bucket holding the
    [q]-th fraction of observations; [nan] when empty. *)

(** {2 Whole-registry snapshot} — sorted by name, for deterministic export. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float * float) list;  (** name, last, max *)
  histograms : (string * histogram_snapshot) list;
}

val snapshot : t -> snapshot
