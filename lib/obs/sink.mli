(** An observability sink bundles one span recorder, one metric registry
    and one causal request log — the unit a system's [subscribe] accepts.

    The {!port} half solves the wiring-order problem: instrumented modules
    (request handler, protocol driver) are constructed before anyone decides
    whether to observe the run, so they hold a [port] — a late-bound slot a
    sink may be attached to afterwards. Until {!attach}, {!tap} is [None]
    and the instrumented hot paths pay one load and one branch. *)

type t = { spans : Span.t; metrics : Metrics.t; causal : Causal.t }

val create : now:(unit -> float) -> unit -> t
(** Enabled sink over the given virtual clock. *)

val null : t
(** Disabled sink: recorder and registry are both no-ops. *)

val enabled : t -> bool

(** {2 Late-bound subscription} *)

type port

val port : unit -> port
(** Fresh unattached slot. *)

val attach : port -> t -> unit
(** Attach a sink; replaces any previous attachment. *)

val detach : port -> unit

val tap : port -> t option
(** The attached sink, if any — the single check on instrumented paths. *)
