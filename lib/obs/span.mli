(** Span recorder stamped with DES virtual time.

    A recorder is created over a clock closure (normally
    [Des.Engine.now engine]) and accumulates trace events — complete spans,
    instants, counter samples and thread-name metadata — in arrival order.
    Because the clock is virtual and each system owns its recorder, the
    event list is a pure function of the seed: traces are byte-reproducible
    across [--jobs N].

    Timestamps are virtual milliseconds; the Chrome exporter converts to
    microseconds. [tid] is a free-form lane id — by convention sites use
    their index, driver clients use [1000 + client]. *)

type t

type span
(** In-flight span handle from {!start}, closed by {!finish}. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      dur : float;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }
  | Counter_sample of { name : string; tid : int; ts : float; value : float }
  | Thread_name of { tid : int; name : string }
  | Flow_start of { name : string; cat : string; tid : int; ts : float; id : int }
      (** opening half of a causal arrow ([ph = "s"]); arrows with the same
          [id], [name] and [cat] bind across lanes in Perfetto *)
  | Flow_finish of { name : string; cat : string; tid : int; ts : float; id : int }
      (** closing half ([ph = "f"]) *)

val create : ?enabled:bool -> now:(unit -> float) -> unit -> t
val null : t
(** Disabled recorder on a constant clock; every call is a no-op. *)

val enabled : t -> bool

val start : t -> ?cat:string -> ?tid:int -> string -> span
(** Open a span at the current virtual time. On a disabled recorder this
    returns a dead handle and allocates nothing beyond it. *)

val finish : t -> ?args:(string * string) list -> span -> unit
(** Close [span] now, recording a [Complete] event. Finishing a dead or
    already-finished handle is a no-op. *)

val complete :
  t -> ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  name:string -> ts:float -> dur:float -> unit -> unit
(** Record a [Complete] event with explicit bounds (for spans reconstructed
    after the fact, e.g. a message hop recorded at delivery). *)

val instant :
  t -> ?cat:string -> ?tid:int -> ?args:(string * string) list -> string -> unit

val counter_sample : t -> ?tid:int -> value:float -> string -> unit

val thread_name : t -> tid:int -> string -> unit
(** Label a lane; exported as Chrome [thread_name] metadata. *)

val flow_start : t -> ?cat:string -> ?tid:int -> ts:float -> id:int -> string -> unit
(** Record the source end of a causal arrow at an explicit time (message
    hops are reconstructed at delivery, so the send time is given, not
    read from the clock). *)

val flow_finish : t -> ?cat:string -> ?tid:int -> ts:float -> id:int -> string -> unit

val events : t -> event list
(** Recorded events in arrival order. *)

val event_count : t -> int
