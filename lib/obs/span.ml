type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      dur : float;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }
  | Counter_sample of { name : string; tid : int; ts : float; value : float }
  | Thread_name of { tid : int; name : string }
  | Flow_start of { name : string; cat : string; tid : int; ts : float; id : int }
  | Flow_finish of { name : string; cat : string; tid : int; ts : float; id : int }

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_ts : float;
  mutable sp_open : bool;
}

type t = {
  enabled : bool;
  now : unit -> float;
  mutable rev_events : event list;
  mutable count : int;
}

let create ?(enabled = true) ~now () = { enabled; now; rev_events = []; count = 0 }
let null = create ~enabled:false ~now:(fun () -> 0.0) ()
let enabled t = t.enabled

let record t event =
  t.rev_events <- event :: t.rev_events;
  t.count <- t.count + 1

let dead_span = { sp_name = ""; sp_cat = ""; sp_tid = 0; sp_ts = 0.0; sp_open = false }

let start t ?(cat = "") ?(tid = 0) name =
  if not t.enabled then dead_span
  else { sp_name = name; sp_cat = cat; sp_tid = tid; sp_ts = t.now (); sp_open = true }

let finish t ?(args = []) span =
  if t.enabled && span.sp_open then begin
    span.sp_open <- false;
    record t
      (Complete
         {
           name = span.sp_name;
           cat = span.sp_cat;
           tid = span.sp_tid;
           ts = span.sp_ts;
           dur = t.now () -. span.sp_ts;
           args;
         })
  end

let complete t ?(cat = "") ?(tid = 0) ?(args = []) ~name ~ts ~dur () =
  if t.enabled then record t (Complete { name; cat; tid; ts; dur; args })

let instant t ?(cat = "") ?(tid = 0) ?(args = []) name =
  if t.enabled then record t (Instant { name; cat; tid; ts = t.now (); args })

let counter_sample t ?(tid = 0) ~value name =
  if t.enabled then record t (Counter_sample { name; tid; ts = t.now (); value })

let thread_name t ~tid name = if t.enabled then record t (Thread_name { tid; name })

let flow_start t ?(cat = "") ?(tid = 0) ~ts ~id name =
  if t.enabled then record t (Flow_start { name; cat; tid; ts; id })

let flow_finish t ?(cat = "") ?(tid = 0) ~ts ~id name =
  if t.enabled then record t (Flow_finish { name; cat; tid; ts; id })

let events t = List.rev t.rev_events
let event_count t = t.count
