(** Critical-path analysis over a {!Causal} log.

    For every completed request the analyzer walks the causal intervals
    recorded on its behalf — queue residencies, cpu waits, local service,
    protocol phases, WAN hops — and partitions the request's end-to-end
    window among them. Overlaps resolve by priority (service > named waits
    > protocol phases > queueing > hops), so each instant is charged
    exactly once. Uncovered time touching the window edges is the client
    WAN legs ([wan.client]); uncovered interior time is reported as
    [other] rather than silently absorbed — the ≥95% attribution check in
    the test suite keeps that component honest.

    The output is a pure function of the event list: breakdowns come
    sorted by trace id, components by descending share. *)

type component = { comp : string; ms : float }

type breakdown = {
  trace : int;
  client : int;
  kind : string;  (** request verb, from the [Submitted] root *)
  entity : string;  (** target entity from the root; [""] = implicit *)
  outcome : string;
  submitted_ms : float;
  wall_ms : float;
  components : component list;
      (** descending [ms], ties broken by name; ["other"] included *)
  attributed_ms : float;  (** wall minus the ["other"] share *)
}

val analyze : Causal.event list -> breakdown list
(** One breakdown per request with both a [Submitted] and a [Completed]
    event, sorted by trace id. *)

val attributed_fraction : breakdown -> float
(** In [[0, 1]]; [1.0] for zero-wall requests. *)

val slowest : int -> breakdown list -> breakdown list
(** Top [n] by wall time (ties by trace id) — the [--slowest] view. *)

val submitted_count : Causal.event list -> int
(** Requests with a root, completed or not. *)
