type t = { spans : Span.t; metrics : Metrics.t; causal : Causal.t }

let create ~now () =
  { spans = Span.create ~now (); metrics = Metrics.create (); causal = Causal.create () }

let null = { spans = Span.null; metrics = Metrics.null; causal = Causal.null }

let enabled t =
  Span.enabled t.spans || Metrics.enabled t.metrics || Causal.enabled t.causal

type port = { mutable sink : t option }

let port () = { sink = None }
let attach port sink = port.sink <- Some sink
let detach port = port.sink <- None
let tap port = port.sink
