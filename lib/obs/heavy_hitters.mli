(** Mergeable Misra-Gries heavy-hitters sketch over entity ids.

    Tracks at most [k] keys online with the one-sided Misra-Gries
    guarantee: [estimate key <= true count <= estimate key + error],
    where untracked keys estimate to 0 and {!error} is the cumulative
    decrement depth. {!merge} is the {e exact} pointwise sum (no
    re-compression), so it is commutative, associative, and lossless on
    disjoint key sets — the property the per-lane {!Windowed} views rely
    on for byte-identical results at any [--engine-jobs]. *)

type t

val create : k:int -> unit -> t
val copy : t -> t

val observe : ?count:int -> t -> string -> unit
(** Feed [count] (default 1) arrivals of a key. Non-positive counts are
    ignored. *)

val merge : t -> t -> t
(** Fresh sketch holding the pointwise count sum and summed error terms
    of both arguments; inputs are not mutated. The result may track more
    than [k] keys. *)

val estimate : t -> string -> int
(** Lower bound on the key's true count (0 if untracked). *)

val error : t -> int
(** One-sided error bound: [true count <= estimate + error]. *)

val total : t -> int
(** Total observations fed in (exact). *)

val tracked : t -> int

val top : ?n:int -> t -> (string * int) list
(** Tracked keys by (count desc, key asc); [n] caps the list. *)

val dump : t -> int * int * int * (string * int) list
(** [(k, error, total, top)] — canonical value for structural equality
    in tests. *)

(** Tumbling per-lane windows. Each engine lane writes only its own
    slot; reads merge lanes in lane order, so views are independent of
    the worker count. Lane [-1] is the driver/global lane. *)
module Windowed : sig
  type w

  val create : k:int -> window_ms:float -> unit -> w
  val observe : w -> lane:int -> now_ms:float -> string -> unit

  val windows : w -> (float * t) list
  (** Per-window lane-merged sketches, ascending window start (ms). *)

  val cumulative : w -> t
  (** All windows merged. *)

  val at : w -> ts:float -> (float * t) option
  (** The merged window containing virtual time [ts], with its start. *)
end
