(** Declarative incident watchdog over {!Flight_recorder} dumps.

    {!detect} is a pure fold over the sorted event list, so incident
    lists are byte-identical wherever the dump is. Direct rules fire on
    one event kind; windowed rules (flap, burst) fire on a sliding-count
    threshold. A per-(rule, entity) cooldown bounds incident volume
    under sustained conditions. *)

type rule =
  | Slo_breach
  | Invariant_violation
  | Breaker_trip
  | Mechanism_flap of { switches : int; within_ms : float }
  | Shed_burst of { sheds : int; within_ms : float }

val rule_name : rule -> string

type spec = { rules : rule list; cooldown_ms : float }

val default_spec : spec
(** All five rules; flap = 4 switches / 10 s, burst = 500 sheds / 1 s,
    cooldown 5 s. *)

type incident = {
  i_rule : string;
  i_ts : float;
  i_site : int;
  i_entity : string;
  i_reason : string;
}

val detect : ?spec:spec -> Flight_recorder.event list -> incident list
(** Incidents in event order. *)

type bundle = {
  b_incident : incident;
  b_events : Flight_recorder.event list;  (** last [context] events at trigger *)
  b_hot : (string * int) list;  (** top keys of the trigger's window *)
  b_hot_window : float option;  (** that window's start (ms), if windowed *)
}

val bundle :
  ?context:int ->
  ?hot:Heavy_hitters.Windowed.w ->
  Flight_recorder.event list ->
  incident ->
  bundle
(** Materialise the black box for one incident (default 8 context
    events). Falls back to the cumulative hot-key sketch when no window
    covers the trigger time. *)

val incident_line : incident -> string
val count_by_rule : incident list -> (string * int) list
