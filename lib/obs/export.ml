(* ------------------------------------------------------------------ *)
(* JSON emission. Numbers print through %.3f (timestamps are virtual ms
   with sub-ms precision; three decimals of a microsecond is plenty) or
   %.6g for metric values — both locale-independent in OCaml. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number buf v =
  if Float.is_nan v then Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.6g" v)

let us buf ms = Buffer.add_string buf (Printf.sprintf "%.3f" (ms *. 1000.0))

let args_obj buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      escape buf k;
      Buffer.add_string buf ":";
      escape buf v)
    args;
  Buffer.add_string buf "}"

let event_json buf ~pid event =
  let common ~name ~cat ~ph ~tid =
    Buffer.add_string buf "{\"name\":";
    escape buf name;
    if cat <> "" then begin
      Buffer.add_string buf ",\"cat\":";
      escape buf cat
    end;
    Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d" ph pid tid)
  in
  (match event with
  | Span.Complete { name; cat; tid; ts; dur; args } ->
      common ~name ~cat ~ph:"X" ~tid;
      Buffer.add_string buf ",\"ts\":";
      us buf ts;
      Buffer.add_string buf ",\"dur\":";
      us buf dur;
      if args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        args_obj buf args
      end
  | Span.Instant { name; cat; tid; ts; args } ->
      common ~name ~cat ~ph:"i" ~tid;
      Buffer.add_string buf ",\"ts\":";
      us buf ts;
      Buffer.add_string buf ",\"s\":\"t\"";
      if args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        args_obj buf args
      end
  | Span.Counter_sample { name; tid; ts; value } ->
      common ~name ~cat:"" ~ph:"C" ~tid;
      Buffer.add_string buf ",\"ts\":";
      us buf ts;
      Buffer.add_string buf ",\"args\":{\"value\":";
      number buf value;
      Buffer.add_string buf "}"
  | Span.Thread_name { tid; name } ->
      common ~name:"thread_name" ~cat:"" ~ph:"M" ~tid;
      Buffer.add_string buf ",\"ts\":0,\"args\":{\"name\":";
      escape buf name;
      Buffer.add_string buf "}"
  | Span.Flow_start { name; cat; tid; ts; id } ->
      common ~name ~cat ~ph:"s" ~tid;
      Buffer.add_string buf (Printf.sprintf ",\"id\":%d,\"ts\":" id);
      us buf ts
  | Span.Flow_finish { name; cat; tid; ts; id } ->
      common ~name ~cat ~ph:"f" ~tid;
      (* bp:"e" binds the arrow to the enclosing slice, the pre-Perfetto
         Chrome convention both viewers accept. *)
      Buffer.add_string buf (Printf.sprintf ",\"id\":%d,\"bp\":\"e\",\"ts\":" id);
      us buf ts);
  Buffer.add_string buf "}"

let trace_json buf recorders =
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit f =
    if !first then first := false else Buffer.add_string buf ",\n";
    f ()
  in
  List.iteri
    (fun pid (process, recorder) ->
      emit (fun () ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"ts\":0,\"args\":{\"name\":"
               pid);
          escape buf process;
          Buffer.add_string buf "}}");
      List.iter (fun event -> emit (fun () -> event_json buf ~pid event))
        (Span.events recorder))
    recorders;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n"

(* ------------------------------------------------------------------ *)
(* Flat metrics document. *)

let metrics_json buf ?(meta = []) registries =
  Buffer.add_string buf "{\"schema\":\"samya-metrics/1\"";
  if meta <> [] then begin
    Buffer.add_string buf ",\n\"meta\":";
    args_obj buf meta
  end;
  Buffer.add_string buf ",\n\"sections\":[";
  List.iteri
    (fun i (section, registry) ->
      if i > 0 then Buffer.add_string buf ",";
      let snap = Metrics.snapshot registry in
      Buffer.add_string buf "\n{\"section\":";
      escape buf section;
      Buffer.add_string buf ",\"counters\":{";
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_string buf ",";
          escape buf name;
          Buffer.add_string buf (Printf.sprintf ":%d" v))
        snap.Metrics.counters;
      Buffer.add_string buf "},\"gauges\":{";
      List.iteri
        (fun j (name, last, max) ->
          if j > 0 then Buffer.add_string buf ",";
          escape buf name;
          Buffer.add_string buf ":{\"last\":";
          number buf last;
          Buffer.add_string buf ",\"max\":";
          number buf max;
          Buffer.add_string buf "}")
        snap.Metrics.gauges;
      Buffer.add_string buf "},\"histograms\":{";
      List.iteri
        (fun j (name, h) ->
          if j > 0 then Buffer.add_string buf ",";
          escape buf name;
          Buffer.add_string buf (Printf.sprintf ":{\"count\":%d,\"sum\":" h.Metrics.count);
          number buf h.Metrics.sum;
          Buffer.add_string buf ",\"min\":";
          number buf h.Metrics.min;
          Buffer.add_string buf ",\"max\":";
          number buf h.Metrics.max;
          Buffer.add_string buf ",\"p50\":";
          number buf (Metrics.quantile h 0.50);
          Buffer.add_string buf ",\"p99\":";
          number buf (Metrics.quantile h 0.99);
          Buffer.add_string buf ",\"buckets\":[";
          List.iteri
            (fun k (idx, c) ->
              if k > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf "{\"le\":";
              number buf (Metrics.bucket_upper_bound idx);
              Buffer.add_string buf (Printf.sprintf ",\"count\":%d}" c))
            h.Metrics.buckets;
          Buffer.add_string buf "]}")
        snap.Metrics.histograms;
      Buffer.add_string buf "}}")
    registries;
  Buffer.add_string buf "]}\n"

(* ------------------------------------------------------------------ *)
(* SLO report document. *)

let slo_json buf ?(meta = []) systems =
  Buffer.add_string buf "{\"schema\":\"samya-slo/1\"";
  if meta <> [] then begin
    Buffer.add_string buf ",\n\"meta\":";
    args_obj buf meta
  end;
  Buffer.add_string buf ",\n\"systems\":[";
  List.iteri
    (fun i (system, window_ms, lines) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n{\"system\":";
      escape buf system;
      Buffer.add_string buf ",\"window_ms\":";
      number buf window_ms;
      Buffer.add_string buf
        (Printf.sprintf ",\"healthy\":%b,\"objectives\":[" (Slo.healthy lines));
      List.iteri
        (fun j (line : Slo.report_line) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf "\n{\"name\":";
          escape buf line.Slo.name;
          Buffer.add_string buf ",\"kind\":";
          escape buf line.Slo.kind;
          if not (Float.is_nan line.Slo.q) then begin
            Buffer.add_string buf ",\"q\":";
            number buf line.Slo.q
          end;
          Buffer.add_string buf ",\"target\":";
          number buf line.Slo.target;
          Buffer.add_string buf
            (Printf.sprintf ",\"windows\":%d,\"violations\":%d,\"worst\":"
               line.Slo.windows line.Slo.violations);
          number buf line.Slo.worst;
          Buffer.add_string buf ",\"overall\":";
          number buf line.Slo.overall;
          Buffer.add_string buf "}")
        lines;
      Buffer.add_string buf "]}")
    systems;
  Buffer.add_string buf "]}\n"

(* ------------------------------------------------------------------ *)
(* Validation: a minimal recursive-descent JSON parser (no dependency),
   then structural checks of the trace_event schema. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              (* keep the raw escape; validation only needs structure *)
              Buffer.add_string buf (String.sub s !pos 4);
              pos := !pos + 4;
              loop ()
          | Some c -> advance (); Buffer.add_char buf c; loop ()
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, value) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, value) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (value :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (value :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  value

let parse s = match parse_json s with exception Parse_error m -> Error m | v -> Ok v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let validate_event i fields =
  let find key = List.assoc_opt key fields in
  let str key =
    match find key with
    | Some (Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "event %d: %S is not a string" i key)
    | None -> Error (Printf.sprintf "event %d: missing %S" i key)
  in
  let num key =
    match find key with
    | Some (Num _) -> Ok ()
    | Some _ -> Error (Printf.sprintf "event %d: %S is not a number" i key)
    | None -> Error (Printf.sprintf "event %d: missing %S" i key)
  in
  let ( let* ) = Result.bind in
  let* _name = str "name" in
  let* ph = str "ph" in
  let* () = num "pid" in
  let* () = num "tid" in
  let* () = if ph = "M" then Ok () else num "ts" in
  let* () = if ph = "X" then num "dur" else Ok () in
  if ph = "s" || ph = "t" || ph = "f" then num "id" else Ok ()

let validate_trace s =
  match parse_json s with
  | exception Parse_error msg -> Error ("not valid JSON: " ^ msg)
  | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr events) ->
          let rec check i = function
            | [] -> Ok i
            | Obj event_fields :: rest -> (
                match validate_event i event_fields with
                | Ok () -> check (i + 1) rest
                | Error _ as e -> e)
            | _ -> Error (Printf.sprintf "event %d is not an object" i)
          in
          check 0 events
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "missing traceEvents")
  | _ -> Error "top level is not an object"
