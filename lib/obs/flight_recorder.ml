(* Always-on flight recorder: bounded per-lane rings of recent
   causal/protocol events.

   Determinism argument (DESIGN.md §16). Every event is written by
   exactly one engine lane (sites record under their hosting region's
   lane; the driver and cluster-level fault injector use lane -1), with
   a per-lane sequence number assigned at record time. Lane event
   streams depend only on virtual time, never on the worker count: the
   sharded DES replays each lane's schedule identically at any
   [--engine-jobs], and jobs 0 runs the same logical lanes on one
   engine. [drain] — called from the shard barrier hook — only *moves*
   events from lane rings into the global buffer to bound per-lane
   memory; [events] always re-sorts the union of the global buffer and
   lane leftovers by the total key (ts, lane, kind rank, seq), so the
   dump is byte-identical no matter when (or whether) barriers ran. The
   kind rank breaks cross-source ties at equal (ts, lane) — e.g. a heal
   fault landing on the same virtual millisecond as an SLO window edge —
   where per-lane seq assignment order may legitimately differ between
   the single-engine and sharded schedulers. *)

type kind =
  | Protocol
  | Breaker
  | Mech
  | Shed
  | Fault
  | Slo_breach
  | Invariant
  | Note

let kind_name = function
  | Protocol -> "protocol"
  | Breaker -> "breaker"
  | Mech -> "mech"
  | Shed -> "shed"
  | Fault -> "fault"
  | Slo_breach -> "slo"
  | Invariant -> "invariant"
  | Note -> "note"

let kind_rank = function
  | Fault -> 0
  | Protocol -> 1
  | Mech -> 2
  | Breaker -> 3
  | Shed -> 4
  | Slo_breach -> 5
  | Invariant -> 6
  | Note -> 7

type event = {
  seq : int; (* per-lane, assigned at record time *)
  lane : int; (* -1 = driver/global *)
  ts : float; (* virtual ms *)
  kind : kind;
  site : int; (* -1 when not site-scoped *)
  entity : string; (* "" when not entity-scoped *)
  detail : string;
}

let compare_event a b =
  let c = compare a.ts b.ts in
  if c <> 0 then c
  else
    let c = compare a.lane b.lane in
    if c <> 0 then c
    else
      let c = compare (kind_rank a.kind) (kind_rank b.kind) in
      if c <> 0 then c else compare a.seq b.seq

(* A bounded ring that drops the oldest event on overflow. *)
type ring = {
  capacity : int;
  mutable buf : event option array;
  mutable start : int;
  mutable size : int;
  mutable next_seq : int;
  mutable dropped : int;
}

let ring_create capacity =
  { capacity; buf = [||]; start = 0; size = 0; next_seq = 0; dropped = 0 }

let ring_push r ev =
  if Array.length r.buf = 0 then r.buf <- Array.make r.capacity None;
  if r.size = r.capacity then begin
    (* overwrite the oldest *)
    r.buf.(r.start) <- Some ev;
    r.start <- (r.start + 1) mod r.capacity;
    r.dropped <- r.dropped + 1
  end
  else begin
    r.buf.((r.start + r.size) mod r.capacity) <- Some ev;
    r.size <- r.size + 1
  end

let ring_iter r f =
  for i = 0 to r.size - 1 do
    match r.buf.((r.start + i) mod r.capacity) with
    | Some ev -> f ev
    | None -> ()
  done

let ring_clear r =
  Array.fill r.buf 0 (Array.length r.buf) None;
  r.start <- 0;
  r.size <- 0

type t = {
  lane_capacity : int;
  mutable rings : ring array; (* index lane+1 *)
  global : ring;
  mutable events_recorded : int;
}

let default_lane_capacity = 32_768
let default_global_capacity = 131_072

let create ?(lane_capacity = default_lane_capacity)
    ?(global_capacity = default_global_capacity) () =
  {
    lane_capacity;
    rings = [||];
    global = ring_create global_capacity;
    events_recorded = 0;
  }

let ring_for t lane =
  let idx = lane + 1 in
  if idx < 0 then invalid_arg "Flight_recorder.record: lane < -1";
  let n = Array.length t.rings in
  if idx >= n then begin
    let grown = Array.init (idx + 1) (fun _ -> ring_create t.lane_capacity) in
    Array.blit t.rings 0 grown 0 n;
    t.rings <- grown
  end;
  t.rings.(idx)

let record t ~lane ~ts ~kind ?(site = -1) ?(entity = "") detail =
  let r = ring_for t lane in
  let ev = { seq = r.next_seq; lane; ts; kind; site; entity; detail } in
  r.next_seq <- r.next_seq + 1;
  t.events_recorded <- t.events_recorded + 1;
  ring_push r ev

(* Move every lane ring's contents into the global buffer, in lane
   order. Purely a memory bound — [events] sorts the union either way. *)
let drain t =
  Array.iter
    (fun r ->
      if r.size > 0 then begin
        ring_iter r (fun ev -> ring_push t.global ev);
        ring_clear r
      end)
    t.rings

let events t =
  let acc = ref [] in
  ring_iter t.global (fun ev -> acc := ev :: !acc);
  Array.iter (fun r -> ring_iter r (fun ev -> acc := ev :: !acc)) t.rings;
  List.sort compare_event !acc

let dropped t =
  let d = ref t.global.dropped in
  Array.iter (fun r -> d := !d + r.dropped) t.rings;
  !d

let recorded t = t.events_recorded

(* One-line rendering shared by the retrystorm figure, incident bundles
   and the run report. *)
let line ev =
  let where =
    if ev.site >= 0 then Printf.sprintf "site %d" ev.site else "global"
  in
  let entity = if ev.entity = "" then "" else Printf.sprintf " [%s]" ev.entity in
  Printf.sprintf "t=%9.1fms  lane %2d  %-7s  %-9s%s  %s" ev.ts ev.lane where
    (kind_name ev.kind) entity ev.detail

(* The armed payload handed to a system: the recorder itself plus an
   optional hot-key sketch fed from the request path. *)
type attachment = { recorder : t; hot : Heavy_hitters.Windowed.w option }

(* Same late-binding idiom as [Sink.port]: the off path is one load and
   one branch on [tap]. *)
type port = { mutable armed : attachment option }

let port () = { armed = None }
let attach port attachment = port.armed <- Some attachment
let detach port = port.armed <- None
let tap port = port.armed
