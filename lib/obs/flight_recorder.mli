(** Always-on flight recorder: bounded per-lane rings of recent
    causal/protocol events, merged deterministically.

    Each event is written by exactly one engine lane (a site's hosting
    region's lane, or lane [-1] for the driver/cluster injector) and
    stamped with a per-lane sequence number. {!drain} — hooked to the
    sharded DES barrier — moves lane rings into a bounded global buffer;
    {!events} always re-sorts the union by (ts, lane, kind rank, seq),
    so dumps are byte-identical at any [--engine-jobs] and independent
    of when barriers ran. See DESIGN.md §16. *)

type kind =
  | Protocol  (** Avantan decide/abort/recovery, leader-side *)
  | Breaker  (** circuit breaker opened *)
  | Mech  (** adaptive controller mechanism switch *)
  | Shed  (** deadline / admission / queue-expiry shed *)
  | Fault  (** injected partition, heal, crash, recovery *)
  | Slo_breach  (** an SLO objective violated its window *)
  | Invariant  (** conservation auditor failure *)
  | Note

val kind_name : kind -> string

type event = {
  seq : int;
  lane : int;
  ts : float;
  kind : kind;
  site : int;  (** [-1] when not site-scoped *)
  entity : string;  (** [""] when not entity-scoped *)
  detail : string;
}

val compare_event : event -> event -> int
(** Total order (ts, lane, kind rank, seq) — the dump order. *)

type t

val create : ?lane_capacity:int -> ?global_capacity:int -> unit -> t
(** Defaults: 32768 events per lane ring, 131072 in the global buffer.
    Overflow drops the oldest event and counts it in {!dropped}. *)

val record :
  t ->
  lane:int ->
  ts:float ->
  kind:kind ->
  ?site:int ->
  ?entity:string ->
  string ->
  unit

val drain : t -> unit
(** Move lane rings into the global buffer (lane order). Called from the
    shard barrier hook purely to bound per-lane memory; {!events} gives
    the same answer whether or not it ever ran. *)

val events : t -> event list
(** Everything retained, sorted by {!compare_event}. *)

val dropped : t -> int
(** Events lost to ring overflow (honesty counter for dumps). *)

val recorded : t -> int
(** Total events ever recorded, including dropped ones. *)

val line : event -> string
(** One-line human rendering used by figures and incident bundles. *)

type attachment = { recorder : t; hot : Heavy_hitters.Windowed.w option }
(** What arming a system hands it: the recorder plus an optional
    request-path hot-key sketch. *)

(** Late-binding port, same idiom as {!Sink.port}: the disarmed hot path
    costs one load and one branch. *)
type port

val port : unit -> port
val attach : port -> attachment -> unit
val detach : port -> unit
val tap : port -> attachment option
