type event =
  | Submitted of {
      trace : int;
      client : int;
      kind : string;
      entity : string;
      ts : float;
    }
  | Accepted of { trace : int; site : int; ts : float }
  | Enqueued of { trace : int; site : int; label : string; ts : float }
  | Dequeued of { trace : int; site : int; ts : float }
  | Wait of { trace : int; site : int; label : string; t0 : float; t1 : float }
  | Service of { trace : int; site : int; t0 : float; t1 : float }
  | Phase of { trace : int; site : int; name : string; t0 : float; t1 : float }
  | Hop of { trace : int; edge : int; src : int; dst : int; t0 : float; t1 : float }
  | Completed of { trace : int; outcome : string; ts : float }

type t = { enabled : bool; mutable rev_events : event list; mutable count : int }

let create ?(enabled = true) () = { enabled; rev_events = []; count = 0 }
let null = create ~enabled:false ()
let enabled t = t.enabled

let record t event =
  if t.enabled then begin
    t.rev_events <- event :: t.rev_events;
    t.count <- t.count + 1
  end

let events t = List.rev t.rev_events
let event_count t = t.count

let trace_of = function
  | Submitted { trace; _ }
  | Accepted { trace; _ }
  | Enqueued { trace; _ }
  | Dequeued { trace; _ }
  | Wait { trace; _ }
  | Service { trace; _ }
  | Phase { trace; _ }
  | Hop { trace; _ }
  | Completed { trace; _ } ->
      trace
