(* Latency attribution by prioritised interval sweep.

   Each causal event contributes a time interval tagged with a component
   name and a priority (smaller wins). Sweeping the boundaries of the
   request's [submitted, completed] window left to right, every instant is
   charged to the highest-priority component covering it — so a protocol
   phase running while the request sits in the redistribution queue counts
   as protocol time, not queue time, and nothing is double-counted.
   Uncovered time at the edges of the window is the client WAN legs (the
   driver-to-site gap no site-local event can cover); uncovered time in
   the interior is reported honestly as "other". *)

type component = { comp : string; ms : float }

type breakdown = {
  trace : int;
  client : int;
  kind : string;
  entity : string;
  outcome : string;
  submitted_ms : float;
  wall_ms : float;
  components : component list;
  attributed_ms : float;
}

let attributed_fraction b =
  if b.wall_ms <= 0.0 then 1.0 else b.attributed_ms /. b.wall_ms

(* Priorities: local service is never pre-empted by an overlapping window;
   named waits beat protocol phases (the cpu backlog window is exact);
   phases beat the queue window they run inside; queueing beats the hops
   the instance is exchanging meanwhile. *)
let prio_service = 1
let prio_wait = 2
let prio_phase = 3
let prio_queue = 4
let prio_hop = 5

let wait_component = function
  | "cpu" -> "queue.cpu"
  | "read" -> "wan.read_fanout"
  | label -> "wait." ^ label

type acc = {
  mutable client : int;
  mutable kind : string;
  mutable entity : string;
  mutable t0 : float;
  mutable has_submit : bool;
  mutable outcome : string option;
  mutable t1 : float;
  (* (priority, component, t0, t1), newest first *)
  mutable intervals : (int * string * float * float) list;
  (* enqueues not yet matched by a dequeue: (site, component, ts) *)
  mutable open_queues : (int * string * float) list;
}

let fresh_acc () =
  {
    client = -1;
    kind = "";
    entity = "";
    t0 = 0.0;
    has_submit = false;
    outcome = None;
    t1 = 0.0;
    intervals = [];
    open_queues = [];
  }

let acc_for table trace =
  match Hashtbl.find_opt table trace with
  | Some a -> a
  | None ->
      let a = fresh_acc () in
      Hashtbl.add table trace a;
      a

let push a prio comp t0 t1 = a.intervals <- (prio, comp, t0, t1) :: a.intervals

let collect events =
  let table : (int, acc) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (event : Causal.event) ->
      match event with
      | Causal.Submitted { trace; client; kind; entity; ts } ->
          let a = acc_for table trace in
          a.client <- client;
          a.kind <- kind;
          a.entity <- entity;
          a.t0 <- ts;
          a.has_submit <- true
      | Causal.Accepted _ -> ()
      | Causal.Enqueued { trace; site; label; ts } ->
          let a = acc_for table trace in
          a.open_queues <- (site, "queue." ^ label, ts) :: a.open_queues
      | Causal.Dequeued { trace; site; ts } -> (
          let a = acc_for table trace in
          (* Entries for one site nest LIFO at worst; the newest open
             enqueue on that site is the one this dequeue closes. *)
          let rec split acc = function
            | [] -> None
            | ((s, comp, t0) as hd) :: rest ->
                if s = site then Some (comp, t0, List.rev_append acc rest)
                else split (hd :: acc) rest
          in
          match split [] a.open_queues with
          | Some (comp, t0, rest) ->
              a.open_queues <- rest;
              push a prio_queue comp t0 ts
          | None -> ())
      | Causal.Wait { trace; site = _; label; t0; t1 } ->
          push (acc_for table trace) prio_wait (wait_component label) t0 t1
      | Causal.Service { trace; site = _; t0; t1 } ->
          push (acc_for table trace) prio_service "local.service" t0 t1
      | Causal.Phase { trace; site = _; name; t0; t1 } ->
          push (acc_for table trace) prio_phase ("protocol." ^ name) t0 t1
      | Causal.Hop { trace; edge = _; src = _; dst = _; t0; t1 } ->
          push (acc_for table trace) prio_hop "wan.replication" t0 t1
      | Causal.Completed { trace; outcome; ts } ->
          let a = acc_for table trace in
          a.outcome <- Some outcome;
          a.t1 <- ts)
    events;
  table

(* Charge [t0, t1] segment by segment to the best covering interval. *)
let sweep ~t0 ~t1 intervals =
  let clipped =
    List.filter_map
      (fun (prio, comp, a, b) ->
        let a = Float.max a t0 and b = Float.min b t1 in
        if b > a then Some (prio, comp, a, b) else None)
      intervals
  in
  (* Boundary events: (time, is_end, prio, comp). Ends sort before starts
     at equal times so zero-width actives cannot survive a boundary. *)
  let bounds =
    List.concat_map
      (fun (prio, comp, a, b) -> [ (a, false, prio, comp); (b, true, prio, comp) ])
      clipped
    |> List.sort (fun (ta, ea, pa, ca) (tb, eb, pb, cb) ->
           let c = Float.compare ta tb in
           if c <> 0 then c
           else
             let c = Bool.compare eb ea in
             if c <> 0 then c
             else
               let c = Int.compare pa pb in
               if c <> 0 then c else String.compare ca cb)
  in
  let active : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let best () =
    Hashtbl.fold
      (fun key count acc ->
        if count <= 0 then acc
        else
          match acc with
          | None -> Some key
          | Some k -> if compare key k < 0 then Some key else acc)
      active None
  in
  (* Ordered (length, cover) segments across [t0, t1]. *)
  let segments = ref [] in
  let cursor = ref t0 in
  let charge upto =
    if upto > !cursor then begin
      let cover = Option.map snd (best ()) in
      segments := (upto -. !cursor, cover) :: !segments;
      cursor := upto
    end
  in
  List.iter
    (fun (time, is_end, prio, comp) ->
      charge (Float.min time t1);
      let key = (prio, comp) in
      let count = Option.value (Hashtbl.find_opt active key) ~default:0 in
      Hashtbl.replace active key (count + (if is_end then -1 else 1)))
    bounds;
  charge t1;
  List.rev !segments

let analyze events =
  let table = collect events in
  let traces =
    Hashtbl.fold (fun trace a acc -> (trace, a) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.filter_map
    (fun (trace, a) ->
      match a.outcome with
      | None -> None
      | Some _ when not a.has_submit -> None
      | Some outcome ->
          let t0 = a.t0 and t1 = a.t1 in
          let wall = t1 -. t0 in
          (* A still-open queue window of a completed request (a rejection
             decided while parked) extends to completion. *)
          List.iter
            (fun (_, comp, qt0) -> push a prio_queue comp qt0 t1)
            a.open_queues;
          a.open_queues <- [];
          let segments = sweep ~t0 ~t1 a.intervals in
          (* Leading and trailing uncovered time is the client WAN legs;
             interior uncovered time stays unexplained. *)
          let n = List.length segments in
          let last_covered = ref (-1) and first_covered = ref n in
          List.iteri
            (fun i (_, cover) ->
              if cover <> None then begin
                if !first_covered = n then first_covered := i;
                last_covered := i
              end)
            segments;
          let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
          let add name ms =
            let v = Option.value (Hashtbl.find_opt totals name) ~default:0.0 in
            Hashtbl.replace totals name (v +. ms)
          in
          List.iteri
            (fun i (len, cover) ->
              match cover with
              | Some comp -> add comp len
              | None ->
                  if i < !first_covered || i > !last_covered then add "wan.client" len
                  else add "other" len)
            segments;
          let components =
            Hashtbl.fold (fun comp ms acc -> { comp; ms } :: acc) totals []
            |> List.filter (fun c -> c.ms > 0.0)
            |> List.sort (fun a b ->
                   let c = Float.compare b.ms a.ms in
                   if c <> 0 then c else String.compare a.comp b.comp)
          in
          let attributed =
            List.fold_left
              (fun acc c -> if c.comp = "other" then acc else acc +. c.ms)
              0.0 components
          in
          Some
            {
              trace;
              client = a.client;
              kind = a.kind;
              entity = a.entity;
              outcome;
              submitted_ms = t0;
              wall_ms = wall;
              components;
              attributed_ms = attributed;
            })
    traces

let submitted_count events =
  List.fold_left
    (fun acc e -> match e with Causal.Submitted _ -> acc + 1 | _ -> acc)
    0 events

let slowest n breakdowns =
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = Float.compare b.wall_ms a.wall_ms in
        if c <> 0 then c else Int.compare a.trace b.trace)
      breakdowns
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take n sorted
