type objective =
  | Latency of { name : string; q : float; target_ms : float }
  | Abort_rate of { name : string; max_rate : float }

(* The paper's service story: local serves keep the median at client-RTT
   scale, redistribution stalls may push the tail to seconds, and
   admission control should shed well under a twentieth of the load. A
   geo-replicated baseline that pays a WAN round per operation blows the
   median objective; a shedding one blows the abort objective. *)
let default_objectives =
  [
    Latency { name = "p50_latency"; q = 0.50; target_ms = 250.0 };
    Latency { name = "p95_latency"; q = 0.95; target_ms = 2_000.0 };
    Latency { name = "p99_latency"; q = 0.99; target_ms = 10_000.0 };
    Abort_rate { name = "abort_rate"; max_rate = 0.05 };
  ]

type t = {
  window_ms : float;
  objectives : objective array;
  total : Quantile_sketch.t;
  mutable total_commits : int;
  mutable total_aborts : int;
  mutable win : Quantile_sketch.t;
  mutable win_commits : int;
  mutable win_aborts : int;
  mutable win_start : float;
  mutable started : bool;
  mutable windows : int;
  violations : int array;
  worst : float array;
  abort_cls : (string, int ref) Hashtbl.t;
      (* cumulative abort counts by cause ("rejected", "shed",
         "timeout", ...) — attribution only, no objective reads them *)
  mutable on_violation :
    name:string ->
    window_start_ms:float ->
    window_end_ms:float ->
    value:float ->
    target:float ->
    unit;
}

let create ?(window_ms = 10_000.0) ?(objectives = default_objectives) () =
  if not (window_ms > 0.0) then invalid_arg "Slo.create: window_ms must be positive";
  let objectives = Array.of_list objectives in
  {
    window_ms;
    objectives;
    total = Quantile_sketch.create ();
    total_commits = 0;
    total_aborts = 0;
    win = Quantile_sketch.create ();
    win_commits = 0;
    win_aborts = 0;
    win_start = 0.0;
    started = false;
    windows = 0;
    violations = Array.make (Array.length objectives) 0;
    worst = Array.make (Array.length objectives) Float.nan;
    abort_cls = Hashtbl.create 8;
    on_violation = (fun ~name:_ ~window_start_ms:_ ~window_end_ms:_ ~value:_ ~target:_ -> ());
  }

let on_violation t hook = t.on_violation <- hook

let window_ms t = t.window_ms

let bump_worst t i v =
  if Float.is_nan t.worst.(i) || v > t.worst.(i) then t.worst.(i) <- v

(* Evaluate the current window against every objective, then reset it.
   Only windows that saw traffic count — an idle tail would otherwise
   dilute the violation ratio with vacuous passes. *)
let close_window t =
  let requests = t.win_commits + t.win_aborts in
  if requests > 0 then begin
    t.windows <- t.windows + 1;
    let violated i value target =
      t.violations.(i) <- t.violations.(i) + 1;
      let name =
        match t.objectives.(i) with
        | Latency { name; _ } | Abort_rate { name; _ } -> name
      in
      t.on_violation ~name ~window_start_ms:t.win_start
        ~window_end_ms:(t.win_start +. t.window_ms) ~value ~target
    in
    Array.iteri
      (fun i objective ->
        match objective with
        | Latency { q; target_ms; _ } ->
            if Quantile_sketch.count t.win > 0 then begin
              let v = Quantile_sketch.quantile t.win q in
              bump_worst t i v;
              if v > target_ms then violated i v target_ms
            end
        | Abort_rate { max_rate; _ } ->
            let rate = float_of_int t.win_aborts /. float_of_int requests in
            bump_worst t i rate;
            if rate > max_rate then violated i rate max_rate)
      t.objectives
  end;
  t.win <- Quantile_sketch.create ();
  t.win_commits <- 0;
  t.win_aborts <- 0

let roll t ~now_ms =
  if not t.started then begin
    t.started <- true;
    t.win_start <- t.window_ms *. Float.of_int (int_of_float (now_ms /. t.window_ms))
  end
  else
    while now_ms >= t.win_start +. t.window_ms do
      close_window t;
      t.win_start <- t.win_start +. t.window_ms;
      (* After a long idle stretch the empty windows between are vacuous;
         skip straight to the window containing [now_ms]. *)
      if
        t.win_commits = 0 && t.win_aborts = 0
        && now_ms >= t.win_start +. t.window_ms
      then
        t.win_start <-
          t.window_ms *. Float.of_int (int_of_float (now_ms /. t.window_ms))
    done

let commit t ~now_ms ~latency_ms =
  roll t ~now_ms;
  Quantile_sketch.add t.total latency_ms;
  Quantile_sketch.add t.win latency_ms;
  t.total_commits <- t.total_commits + 1;
  t.win_commits <- t.win_commits + 1

let abort ?cls t ~now_ms =
  roll t ~now_ms;
  t.total_aborts <- t.total_aborts + 1;
  t.win_aborts <- t.win_aborts + 1;
  match cls with
  | None -> ()
  | Some cls -> (
      match Hashtbl.find_opt t.abort_cls cls with
      | Some r -> incr r
      | None -> Hashtbl.add t.abort_cls cls (ref 1))

let abort_classes t =
  Hashtbl.fold (fun cls r l -> (cls, !r) :: l) t.abort_cls []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flush t = close_window t

type report_line = {
  name : string;
  kind : string;
  q : float;
  target : float;
  windows : int;
  violations : int;
  worst : float;
  overall : float;
}

let report t =
  close_window t;
  Array.to_list
    (Array.mapi
       (fun i objective ->
         match objective with
         | Latency { name; q; target_ms } ->
             {
               name;
               kind = "latency";
               q;
               target = target_ms;
               windows = t.windows;
               violations = t.violations.(i);
               worst = t.worst.(i);
               overall = Quantile_sketch.quantile t.total q;
             }
         | Abort_rate { name; max_rate } ->
             let requests = t.total_commits + t.total_aborts in
             {
               name;
               kind = "abort_rate";
               q = Float.nan;
               target = max_rate;
               windows = t.windows;
               violations = t.violations.(i);
               worst = t.worst.(i);
               overall =
                 (if requests = 0 then Float.nan
                  else float_of_int t.total_aborts /. float_of_int requests);
             })
       t.objectives)

let healthy lines = List.for_all (fun line -> line.violations = 0) lines
