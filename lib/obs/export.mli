(** Exporters for recorded observability data.

    {!trace_json} writes Chrome [trace_event] JSON Array Format (the object
    form, [{"traceEvents": [...]}]) loadable in [chrome://tracing] and
    Perfetto. Each named recorder becomes one process ([pid] = list index),
    announced with a [process_name] metadata event; virtual milliseconds
    become the format's microseconds. Output is a pure function of the
    recorded events — byte-stable for byte-stable recordings.

    {!metrics_json} writes a flat self-describing document
    ([samya-metrics/1]) with one section per named registry. *)

val trace_json : Buffer.t -> (string * Span.t) list -> unit
(** [trace_json buf [(process, recorder); ...]] appends the trace document
    to [buf]. *)

val metrics_json :
  Buffer.t -> ?meta:(string * string) list -> (string * Metrics.t) list -> unit
(** [metrics_json buf ~meta [(section, registry); ...]]: flat metrics
    document; [meta] becomes a string-valued header object. *)

val slo_json :
  Buffer.t ->
  ?meta:(string * string) list ->
  (string * float * Slo.report_line list) list ->
  unit
(** [slo_json buf ~meta [(system, window_ms, lines); ...]] writes the
    [samya-slo/1] document: one entry per system with its window size, a
    [healthy] verdict and one object per objective line. *)

(** {2 Validation} — a self-contained structural check used by the CLI and
    CI smoke step; no external JSON dependency. *)

val validate_trace : string -> (int, string) result
(** Parse [s] as JSON and check the [trace_event] schema: top-level object
    with a [traceEvents] array; every event an object with string [name]
    and [ph] plus numeric [ts]/[pid]/[tid] (metadata events exempt from
    [ts]); [ph = "X"] events additionally need a numeric [dur], flow
    events ([ph] = "s"/"t"/"f") a numeric [id]. Returns the number of
    events. *)

(** {2 Generic JSON access} — the same parser, exposed for tools that
    read the documents back (the CI perf-regression gate). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

val member : string -> json -> json option
(** Object field lookup; [None] on non-objects. *)
