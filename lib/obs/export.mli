(** Exporters for recorded observability data.

    {!trace_json} writes Chrome [trace_event] JSON Array Format (the object
    form, [{"traceEvents": [...]}]) loadable in [chrome://tracing] and
    Perfetto. Each named recorder becomes one process ([pid] = list index),
    announced with a [process_name] metadata event; virtual milliseconds
    become the format's microseconds. Output is a pure function of the
    recorded events — byte-stable for byte-stable recordings.

    {!metrics_json} writes a flat self-describing document
    ([samya-metrics/1]) with one section per named registry. *)

val trace_json : Buffer.t -> (string * Span.t) list -> unit
(** [trace_json buf [(process, recorder); ...]] appends the trace document
    to [buf]. *)

val metrics_json :
  Buffer.t -> ?meta:(string * string) list -> (string * Metrics.t) list -> unit
(** [metrics_json buf ~meta [(section, registry); ...]]: flat metrics
    document; [meta] becomes a string-valued header object. *)

(** {2 Validation} — a self-contained structural check used by the CLI and
    CI smoke step; no external JSON dependency. *)

val validate_trace : string -> (int, string) result
(** Parse [s] as JSON and check the [trace_event] schema: top-level object
    with a [traceEvents] array; every event an object with string [name]
    and [ph] plus numeric [ts]/[pid]/[tid] (metadata events exempt from
    [ts]); [ph = "X"] events additionally need a numeric [dur]. Returns the
    number of events. *)
