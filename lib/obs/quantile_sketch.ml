(* Same fixed log-bucket idea as [Metrics], but finer (gamma = 2^(1/8),
   <9% relative error) and value-shaped: a sketch is a standalone value
   with a total, associative, commutative [merge]. No sum is tracked —
   float addition is not associative, and keeping the state to (buckets,
   count, min, max) makes merge algebraically exact, which the qcheck
   algebra tests rely on. *)

let lo = 0.001
let gamma = Float.pow 2.0 0.125
let n_buckets = 320
let inv_log_gamma = 1.0 /. Float.log gamma

let bucket_of v =
  if not (v > lo) then 0
  else
    let i = 1 + int_of_float (Float.floor (Float.log (v /. lo) *. inv_log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

let bucket_upper_bound i = if i <= 0 then lo else lo *. Float.pow gamma (float_of_int i)

type t = {
  buckets : int array;
  mutable count : int;
  mutable min : float;
  mutable max : float;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; min = Float.nan; max = Float.nan }

let add t v =
  if not (Float.is_nan v) then begin
    let i = bucket_of v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    if t.count = 1 then begin
      t.min <- v;
      t.max <- v
    end
    else begin
      if v < t.min then t.min <- v;
      if v > t.max then t.max <- v
    end
  end

let count t = t.count
let min_value t = t.min
let max_value t = t.max

let pick_min a b =
  if Float.is_nan a then b else if Float.is_nan b then a else Float.min a b

let pick_max a b =
  if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b

let merge a b =
  {
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    min = pick_min a.min b.min;
    max = pick_max a.max b.max;
  }

let equal a b =
  a.count = b.count
  && a.buckets = b.buckets
  && (Float.equal a.min b.min || (Float.is_nan a.min && Float.is_nan b.min))
  && (Float.equal a.max b.max || (Float.is_nan a.max && Float.is_nan b.max))

let quantile t q =
  if t.count = 0 then Float.nan
  else begin
    let target =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let acc = ref 0 and i = ref 0 and result = ref t.max in
    (try
       while !i < n_buckets do
         acc := !acc + t.buckets.(!i);
         if !acc >= target then begin
           result := bucket_upper_bound !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* The true rank-[target] sample lies in the found bucket, so clamping
       to the observed extrema only ever tightens the answer. *)
    Float.min t.max (Float.max t.min !result)
  end
