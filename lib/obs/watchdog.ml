(* Declarative incident watchdog over flight-recorder dumps.

   [detect] is a pure fold over the (already deterministically sorted)
   event list — no clocks, no mutation of the recorder — so incident
   lists inherit the recorder's byte-identity across [--engine-jobs].
   Rules either fire directly on one event kind (SLO breach, invariant
   violation, breaker trip) or on a sliding-window count (mechanism
   flapping, shed bursts). A per-(rule, entity) cooldown keeps one
   sustained condition from flooding the incident list. *)

type rule =
  | Slo_breach
  | Invariant_violation
  | Breaker_trip
  | Mechanism_flap of { switches : int; within_ms : float }
  | Shed_burst of { sheds : int; within_ms : float }

let rule_name = function
  | Slo_breach -> "slo-breach"
  | Invariant_violation -> "invariant-violation"
  | Breaker_trip -> "breaker-trip"
  | Mechanism_flap _ -> "mechanism-flap"
  | Shed_burst _ -> "shed-burst"

type spec = { rules : rule list; cooldown_ms : float }

let default_spec =
  {
    rules =
      [
        Slo_breach;
        Invariant_violation;
        Breaker_trip;
        Mechanism_flap { switches = 4; within_ms = 10_000.0 };
        Shed_burst { sheds = 500; within_ms = 1_000.0 };
      ];
    cooldown_ms = 5_000.0;
  }

type incident = {
  i_rule : string;
  i_ts : float;
  i_site : int;
  i_entity : string;
  i_reason : string;
}

(* Sliding-window counter keyed by entity: push a timestamp, expire
   everything older than [within_ms], report the window size. *)
let slide tbl key ~ts ~within_ms =
  let window = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  let window = ts :: List.filter (fun t -> ts -. t <= within_ms) window in
  Hashtbl.replace tbl key window;
  List.length window

let detect ?(spec = default_spec) events =
  let cooldown = Hashtbl.create 16 in
  let flaps = Hashtbl.create 16 in
  let bursts = Hashtbl.create 4 in
  let incidents = ref [] in
  let cooled_fire ~rule ~key (ev : Flight_recorder.event) reason =
    let ck = (rule_name rule, key) in
    let ok =
      match Hashtbl.find_opt cooldown ck with
      | Some last -> ev.ts -. last > spec.cooldown_ms
      | None -> true
    in
    if ok then begin
      Hashtbl.replace cooldown ck ev.ts;
      incidents :=
        {
          i_rule = rule_name rule;
          i_ts = ev.ts;
          i_site = ev.site;
          i_entity = ev.entity;
          i_reason = reason;
        }
        :: !incidents
    end
  in
  List.iter
    (fun (ev : Flight_recorder.event) ->
      List.iter
        (fun rule ->
          match (rule, ev.kind) with
          | Slo_breach, Flight_recorder.Slo_breach ->
              cooled_fire ~rule ~key:ev.entity ev ev.detail
          | Invariant_violation, Flight_recorder.Invariant ->
              cooled_fire ~rule ~key:ev.entity ev ev.detail
          | Breaker_trip, Flight_recorder.Breaker ->
              cooled_fire ~rule ~key:ev.entity ev ev.detail
          | Mechanism_flap { switches; within_ms }, Flight_recorder.Mech ->
              let n = slide flaps ev.entity ~ts:ev.ts ~within_ms in
              if n >= switches then begin
                Hashtbl.replace flaps ev.entity [];
                cooled_fire ~rule ~key:ev.entity ev
                  (Printf.sprintf "%d mechanism switches within %.0f ms (last: %s)"
                     n within_ms ev.detail)
              end
          | Shed_burst { sheds; within_ms }, Flight_recorder.Shed ->
              let n = slide bursts "" ~ts:ev.ts ~within_ms in
              if n >= sheds then begin
                Hashtbl.replace bursts "" [];
                cooled_fire ~rule ~key:"" ev
                  (Printf.sprintf "%d requests shed within %.0f ms (last: %s)"
                     n within_ms ev.detail)
              end
          | _ -> ())
        spec.rules)
    events;
  List.rev !incidents

(* Black-box bundle: the incident, the recorder events leading up to it,
   and the hot keys of the window it landed in — self-contained enough
   to read without re-running the workload. *)
type bundle = {
  b_incident : incident;
  b_events : Flight_recorder.event list;
  b_hot : (string * int) list;
  b_hot_window : float option; (* window start, ms *)
}

let bundle ?(context = 8) ?hot events incident =
  let before =
    List.filter
      (fun (ev : Flight_recorder.event) -> ev.Flight_recorder.ts <= incident.i_ts)
      events
  in
  let n = List.length before in
  let b_events = List.filteri (fun i _ -> i >= n - context) before in
  let b_hot, b_hot_window =
    match hot with
    | None -> ([], None)
    | Some w -> (
        (* An SLO breach is stamped at its window's *end*, which is the
           half-open start of the next window — nudge the lookup back so
           the bundle reports the window that actually breached. *)
        match Heavy_hitters.Windowed.at w ~ts:(incident.i_ts -. 1e-6) with
        | Some (start, sk) -> (Heavy_hitters.top ~n:8 sk, Some start)
        | None ->
            (Heavy_hitters.top ~n:8 (Heavy_hitters.Windowed.cumulative w), None))
  in
  { b_incident = incident; b_events; b_hot; b_hot_window }

let incident_line i =
  let where = if i.i_site >= 0 then Printf.sprintf "site %d" i.i_site else "global" in
  let entity = if i.i_entity = "" then "" else Printf.sprintf " [%s]" i.i_entity in
  Printf.sprintf "t=%9.1fms  %-19s %s%s  %s" i.i_ts i.i_rule where entity i.i_reason

(* (rule, count) pairs in first-seen order — compact figure summaries. *)
let count_by_rule incidents =
  let order = ref [] in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match Hashtbl.find_opt counts i.i_rule with
      | Some r -> incr r
      | None ->
          order := i.i_rule :: !order;
          Hashtbl.add counts i.i_rule (ref 1))
    incidents;
  List.rev_map (fun rule -> (rule, !(Hashtbl.find counts rule))) !order
