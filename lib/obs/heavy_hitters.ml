(* Misra-Gries heavy-hitters sketch over entity ids.

   The classic streaming top-k summary: at most [k] keys are tracked; an
   arrival of an untracked key while the table is full decrements every
   tracked counter instead (the batch form decrements by [min n m] where
   [m] is the smallest tracked count, then inserts the remainder). The
   total decrement depth is the sketch's one-sided error bound:

     estimate(key) <= true_count(key) <= estimate(key) + error

   where [estimate] is 0 for untracked keys.

   [merge] deliberately does NOT re-compress to [k] entries: it is the
   exact pointwise sum of counts plus the sum of error terms. That makes
   the merge algebra honest — commutative, associative, and lossless on
   disjoint key sets — which the qcheck suite verifies literally, and
   callers re-rank with [top] anyway. Sketches merged across many lanes
   can therefore hold more than [k] keys; [k] only bounds what each lane
   tracks online. *)

type t = {
  k : int;
  counts : (string, int ref) Hashtbl.t;
  mutable decrements : int;
  mutable total : int;
}

let create ~k () =
  if k <= 0 then invalid_arg "Heavy_hitters.create: k must be positive";
  { k; counts = Hashtbl.create (2 * k); decrements = 0; total = 0 }

let copy t =
  let counts = Hashtbl.create (2 * t.k) in
  Hashtbl.iter (fun key r -> Hashtbl.add counts key (ref !r)) t.counts;
  { k = t.k; counts; decrements = t.decrements; total = t.total }

let min_tracked t =
  Hashtbl.fold (fun _ r acc -> min !r acc) t.counts max_int

let observe ?(count = 1) t key =
  if count > 0 then begin
    t.total <- t.total + count;
    match Hashtbl.find_opt t.counts key with
    | Some r -> r := !r + count
    | None ->
        if Hashtbl.length t.counts < t.k then
          Hashtbl.add t.counts key (ref count)
        else begin
          (* Table full: absorb as much of the batch as the smallest
             tracked count allows, decrementing everyone in lockstep. *)
          let d = min count (min_tracked t) in
          let zeroed = ref [] in
          Hashtbl.iter
            (fun key r ->
              r := !r - d;
              if !r = 0 then zeroed := key :: !zeroed)
            t.counts;
          List.iter (fun key -> Hashtbl.remove t.counts key) !zeroed;
          t.decrements <- t.decrements + d;
          let rest = count - d in
          if rest > 0 then Hashtbl.add t.counts key (ref rest)
        end
  end

let merge a b =
  let m = copy a in
  Hashtbl.iter
    (fun key r ->
      match Hashtbl.find_opt m.counts key with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.add m.counts key (ref !r))
    b.counts;
  m.decrements <- a.decrements + b.decrements;
  m.total <- a.total + b.total;
  { m with k = max a.k b.k }

let estimate t key =
  match Hashtbl.find_opt t.counts key with Some r -> !r | None -> 0

let error t = t.decrements
let total t = t.total
let tracked t = Hashtbl.length t.counts

let top ?n t =
  let all = Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.counts [] in
  let sorted =
    List.sort
      (fun (ka, ca) (kb, cb) ->
        if ca <> cb then compare cb ca else String.compare ka kb)
      all
  in
  match n with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* Canonical value for structural comparison in tests. *)
let dump t = (t.k, t.decrements, t.total, top t)

(* Tumbling windows, sharded by engine lane.

   Each lane writes only its own slot (no cross-domain sharing), and
   every read-side view merges the lanes in lane order — so the merged
   result is identical whether the run used 0, 1 or N worker domains.
   Window starts are aligned to multiples of [window_ms] of virtual
   time, which every lane computes identically from its own clock. *)
module Windowed = struct
  let create_sketch = create
  let observe_sketch = observe

  type lane_state = {
    mutable cur : t option;
    mutable cur_start : float;
    mutable closed : (float * t) list; (* newest first *)
  }

  type w = {
    wk : int;
    window_ms : float;
    mutable lanes : lane_state array; (* index lane+1; slot 0 = lane -1 *)
  }

  let create ~k ~window_ms () =
    if not (window_ms > 0.0) then
      invalid_arg "Heavy_hitters.Windowed.create: window_ms must be positive";
    { wk = k; window_ms; lanes = [||] }

  let fresh_lane () = { cur = None; cur_start = 0.0; closed = [] }

  let lane_state w lane =
    let idx = lane + 1 in
    if idx < 0 then invalid_arg "Heavy_hitters.Windowed.observe: lane < -1";
    let n = Array.length w.lanes in
    if idx >= n then begin
      let grown = Array.init (idx + 1) (fun _ -> fresh_lane ()) in
      Array.blit w.lanes 0 grown 0 n;
      w.lanes <- grown
    end;
    w.lanes.(idx)

  let aligned w now_ms =
    w.window_ms *. Float.of_int (int_of_float (now_ms /. w.window_ms))

  let observe w ~lane ~now_ms key =
    let ls = lane_state w lane in
    (match ls.cur with
    | Some cur when now_ms < ls.cur_start +. w.window_ms ->
        observe_sketch cur key
    | Some cur ->
        ls.closed <- (ls.cur_start, cur) :: ls.closed;
        let sk = create_sketch ~k:w.wk () in
        observe_sketch sk key;
        ls.cur <- Some sk;
        ls.cur_start <- aligned w now_ms
    | None ->
        let sk = create_sketch ~k:w.wk () in
        observe_sketch sk key;
        ls.cur <- Some sk;
        ls.cur_start <- aligned w now_ms)

  (* All (start, sketch) pairs of one lane, oldest first. *)
  let lane_windows ls =
    let all =
      match ls.cur with
      | None -> ls.closed
      | Some cur -> (ls.cur_start, cur) :: ls.closed
    in
    List.rev all

  let windows w =
    let merged = Hashtbl.create 16 in
    let starts = ref [] in
    Array.iter
      (fun ls ->
        List.iter
          (fun (start, sk) ->
            match Hashtbl.find_opt merged start with
            | Some acc -> Hashtbl.replace merged start (merge acc sk)
            | None ->
                starts := start :: !starts;
                Hashtbl.add merged start (copy sk))
          (lane_windows ls))
      w.lanes;
    List.sort compare !starts
    |> List.map (fun start -> (start, Hashtbl.find merged start))

  let cumulative w =
    let acc = ref (create_sketch ~k:w.wk ()) in
    List.iter (fun (_, sk) -> acc := merge !acc sk) (windows w);
    !acc

  (* The merged window containing virtual time [ts], if any lane saw
     traffic in it. *)
  let at w ~ts =
    let rec find = function
      | [] -> None
      | (start, sk) :: rest ->
          if ts >= start && ts < start +. w.window_ms then Some (start, sk)
          else find rest
    in
    find (windows w)
end
