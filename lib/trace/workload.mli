(** Transactional request streams derived from a trace (§5.1.2).

    Each VM creation in an interval becomes one [acquireTokens(VM, 1)]
    request and each deletion one [releaseTokens(VM, 1)] request, with
    arrival instants scattered uniformly inside the (compressed) interval.
    The result is an open-loop workload: clients issue requests at trace
    rate regardless of system backpressure, which is what makes hotspots
    hot. *)

type kind = Acquire | Release | Read

type request = {
  time_ms : float;  (** arrival at the client's app manager, virtual ms *)
  site : int;  (** node id of the closest site *)
  kind : kind;
  amount : int;  (** token count; 1 for trace-derived requests *)
  entity : string;
      (** aggregate object the request targets; [""] means the single
          entity the driven system facade is bound to (trace-derived
          streams), a name routes through the facade's generic [submit]
          verb (multi-entity fleets) *)
}

val of_trace :
  rng:Des.Rng.t ->
  trace:Azure_trace.t ->
  site:int ->
  ?start_interval:int ->
  ?intervals:int ->
  ?amount:int ->
  unit ->
  request array
(** Requests for [intervals] intervals of [trace] starting at
    [start_interval] (defaults: the whole trace), timed from virtual 0,
    sorted by [time_ms], targeted at [site]. *)

val gateway :
  rng:Des.Rng.t ->
  zipf:Zipf.t ->
  key_name:(int -> string) ->
  key_home:(int -> int) ->
  n_clients:int ->
  rate_per_s:float ->
  duration_ms:float ->
  ?home_affinity:float ->
  ?read_ratio:float ->
  unit ->
  request array
(** Open-loop Zipfian fleet stream (the gateway-fleet experiment):
    Poisson arrivals at [rate_per_s] across the whole fleet; each arrival
    draws its key rank from [zipf], names its entity via [key_name] and
    issues from the key's [key_home] client with probability
    [home_affinity] (default [0.8]), a uniform client otherwise. A draw
    is a [Read] with probability [read_ratio] (default [0.05]) and an
    [Acquire] of 1 token otherwise — releases are left to the driver's
    grant-driven lifetimes (the rate-limit window). Deterministic in
    [rng]; sorted by [time_ms]. *)

val flash_sale :
  rng:Des.Rng.t ->
  entity:string ->
  home:int ->
  n_clients:int ->
  base_rate_per_s:float ->
  spike_rate_per_s:float ->
  spike_start_ms:float ->
  spike_end_ms:float ->
  duration_ms:float ->
  ?home_affinity:float ->
  unit ->
  request array
(** Single-entity overload stream (the retry-storm experiment):
    piecewise-Poisson 1-token Acquires on [entity] — [base_rate_per_s]
    over [\[0, spike_start_ms)], [spike_rate_per_s] over
    [\[spike_start_ms, spike_end_ms)] (the flash sale), then the base
    rate again until [duration_ms]. Each arrival issues from [home] with
    probability [home_affinity] (default [0.9]), a uniform client
    otherwise. Releases are left to the driver's grant-driven lifetimes.
    Deterministic in [rng]; sorted by [time_ms]. Raises
    [Invalid_argument] unless [0 <= start <= end <= duration], rates are
    positive and [home] is a valid client. *)

type ramp_phase = {
  until_ms : float;  (** segment end (absolute); segments are contiguous *)
  rate_per_s : float;
  home_affinity : float;
}

val skew_ramp :
  rng:Des.Rng.t ->
  entity:string ->
  home:int ->
  n_clients:int ->
  phases:ramp_phase list ->
  unit ->
  request array
(** Multi-phase single-entity stream (the contention-controller
    experiment): piecewise-Poisson 1-token Acquires on [entity], each
    phase with its own arrival rate and locality — an arrival issues from
    [home] with that phase's [home_affinity], a uniform client otherwise.
    Releases are left to the driver's grant-driven lifetimes.
    Deterministic in [rng]; sorted by [time_ms]. Raises
    [Invalid_argument] unless phase ends are strictly ascending, rates
    positive, affinities in [0, 1] and [home] a valid client. *)

val merge : request array list -> request array
(** Stable time-ordered merge of per-site streams. *)

val with_reads : rng:Des.Rng.t -> read_ratio:float -> request array -> request array
(** Converts each request to a [Read] independently with probability
    [read_ratio] — the Fig. 3h knob. Raises [Invalid_argument] outside
    [\[0, 1\]]. *)

val duration_ms : request array -> float
(** Time of the last request, 0 for an empty stream. *)

val count_kind : request array -> kind -> int
