(** Zipfian rank sampler — the gateway fleet's key-popularity model.

    Ranks are 0-based and popularity is rank-monotone by construction:
    rank [r] is drawn with probability proportional to
    [1 / (r+1)^theta], so [probability t r > probability t (r+1)] for
    every [theta > 0]. Sampling is a binary search over a precomputed
    CDF, deterministic in the caller's {!Des.Rng} stream. *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] materialises the distribution over [n] ranks.
    [theta] defaults to [0.99] (the YCSB constant). Raises
    [Invalid_argument] when [n < 1] or [theta < 0]. *)

val size : t -> int

val theta : t -> float

val probability : t -> int -> float
(** Probability of drawing the given 0-based rank. *)

val sample : t -> Des.Rng.t -> int
(** Draw a rank; O(log n). *)
