(* Zipfian rank sampler over a fixed universe of n keys.

   The distribution is materialised once as a normalised CDF over ranks
   (weight of rank r is 1 / (r+1)^theta, so popularity is strictly
   monotone in rank) and sampled by binary search — O(n) setup, O(log n)
   per draw, which is what makes million-key streams cheap to generate.
   All randomness comes from the caller's {!Des.Rng}, so streams replay
   bit-for-bit at any seed. *)

type t = { n : int; theta : float; cdf : float array }

let create ?(theta = 0.99) n =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (r + 1) ** theta));
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  (* Guard against accumulated rounding: the last bucket must cover 1. *)
  cdf.(n - 1) <- 1.0;
  { n; theta; cdf }

let size t = t.n

let theta t = t.theta

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

let sample t rng =
  let u = Des.Rng.float rng 1.0 in
  (* First rank whose cumulative weight covers u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
