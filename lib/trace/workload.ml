type kind = Acquire | Release | Read

type request = {
  time_ms : float;
  site : int;
  kind : kind;
  amount : int;
  entity : string;
}

let compare_time a b = compare a.time_ms b.time_ms

let of_trace ~rng ~trace ~site ?(start_interval = 0) ?intervals ?(amount = 1) () =
  let total = Azure_trace.length trace in
  let intervals = Option.value intervals ~default:(total - start_interval) in
  if start_interval < 0 || start_interval + intervals > total then
    invalid_arg "Workload.of_trace: interval range out of bounds";
  let interval_ms = trace.Azure_trace.interval_s *. 1000.0 in
  let out = ref [] in
  (* Clients never release more than they acquired (§3.2): deletions are
     capped by the running balance of the emitted stream, which also
     absorbs the wrap-around of phase-shifted traces. *)
  let balance = ref 0 in
  for i = 0 to intervals - 1 do
    let idx = start_interval + i in
    let base = float_of_int i *. interval_ms in
    let emit kind count =
      for _ = 1 to count do
        let time_ms = base +. Des.Rng.float rng interval_ms in
        out := { time_ms; site; kind; amount; entity = "" } :: !out
      done
    in
    let created = int_of_float trace.Azure_trace.creations.(idx) in
    let deleted = min (int_of_float trace.Azure_trace.deletions.(idx)) (!balance + created) in
    balance := !balance + created - deleted;
    emit Acquire created;
    emit Release deleted
  done;
  let arr = Array.of_list !out in
  Array.sort compare_time arr;
  arr

let gateway ~rng ~zipf ~key_name ~key_home ~n_clients ~rate_per_s ~duration_ms
    ?(home_affinity = 0.8) ?(read_ratio = 0.05) () =
  if n_clients < 1 then invalid_arg "Workload.gateway: n_clients must be >= 1";
  if rate_per_s <= 0.0 then invalid_arg "Workload.gateway: rate must be positive";
  if home_affinity < 0.0 || home_affinity > 1.0 then
    invalid_arg "Workload.gateway: home_affinity outside [0, 1]";
  if read_ratio < 0.0 || read_ratio > 1.0 then
    invalid_arg "Workload.gateway: read_ratio outside [0, 1]";
  (* Open-loop Poisson arrivals over the whole fleet; each arrival draws
     its key from the Zipfian popularity, then its issuing client — the
     key's home region with probability [home_affinity] (the "EU tenant
     calls the EU gateway" skew), uniform otherwise. Releases are not
     emitted: gateway tokens return via the driver's grant-driven
     releases, whose lifetime models the rate-limit window. *)
  let out = ref [] and count = ref 0 in
  let t = ref 0.0 in
  let rate = rate_per_s /. 1000.0 (* per ms *) in
  let continue = ref true in
  while !continue do
    t := !t +. Des.Rng.exponential rng ~rate;
    if !t > duration_ms then continue := false
    else begin
      let key = Zipf.sample zipf rng in
      let home = key_home key in
      let site =
        if Des.Rng.bool rng home_affinity then home
        else Des.Rng.int rng n_clients
      in
      let kind = if Des.Rng.bool rng read_ratio then Read else Acquire in
      out := { time_ms = !t; site; kind; amount = 1; entity = key_name key } :: !out;
      incr count
    end
  done;
  let arr = Array.make !count { time_ms = 0.0; site = 0; kind = Read; amount = 0; entity = "" } in
  (* The stream was generated in time order; reverse the accumulator. *)
  List.iteri (fun i r -> arr.(!count - 1 - i) <- r) !out;
  arr

let flash_sale ~rng ~entity ~home ~n_clients ~base_rate_per_s ~spike_rate_per_s
    ~spike_start_ms ~spike_end_ms ~duration_ms ?(home_affinity = 0.9) () =
  if n_clients < 1 then invalid_arg "Workload.flash_sale: n_clients must be >= 1";
  if home < 0 || home >= n_clients then
    invalid_arg "Workload.flash_sale: home outside [0, n_clients)";
  if not (base_rate_per_s > 0.0) then
    invalid_arg "Workload.flash_sale: base rate must be positive";
  if not (spike_rate_per_s > 0.0) then
    invalid_arg "Workload.flash_sale: spike rate must be positive";
  if
    not
      (0.0 <= spike_start_ms
      && spike_start_ms <= spike_end_ms
      && spike_end_ms <= duration_ms)
  then invalid_arg "Workload.flash_sale: need 0 <= start <= end <= duration";
  if home_affinity < 0.0 || home_affinity > 1.0 then
    invalid_arg "Workload.flash_sale: home_affinity outside [0, 1]";
  (* Piecewise-Poisson arrivals on one entity: base rate, then the spike,
     then base again — three sequential segments drawn from the same rng
     so the stream is one deterministic sequence. Every arrival is a
     1-token Acquire (flash-sale checkouts); releases come back through
     the driver's grant-driven lifetimes. *)
  let out = ref [] and count = ref 0 in
  let t = ref 0.0 in
  let segment ~rate_per_s ~until_ms =
    let rate = rate_per_s /. 1000.0 (* per ms *) in
    let continue = ref true in
    while !continue do
      let next = !t +. Des.Rng.exponential rng ~rate in
      if next > until_ms then begin
        (* Restart the thinning clock at the boundary: the next segment's
           first gap is drawn fresh at its own rate. *)
        t := until_ms;
        continue := false
      end
      else begin
        t := next;
        let site =
          if Des.Rng.bool rng home_affinity then home
          else Des.Rng.int rng n_clients
        in
        out := { time_ms = !t; site; kind = Acquire; amount = 1; entity } :: !out;
        incr count
      end
    done
  in
  segment ~rate_per_s:base_rate_per_s ~until_ms:spike_start_ms;
  segment ~rate_per_s:spike_rate_per_s ~until_ms:spike_end_ms;
  segment ~rate_per_s:base_rate_per_s ~until_ms:duration_ms;
  let arr = Array.make !count { time_ms = 0.0; site = 0; kind = Read; amount = 0; entity = "" } in
  (* The stream was generated in time order; reverse the accumulator. *)
  List.iteri (fun i r -> arr.(!count - 1 - i) <- r) !out;
  arr

type ramp_phase = {
  until_ms : float;  (** segment end (absolute); segments are contiguous *)
  rate_per_s : float;
  home_affinity : float;
}

let skew_ramp ~rng ~entity ~home ~n_clients ~phases () =
  if n_clients < 1 then invalid_arg "Workload.skew_ramp: n_clients must be >= 1";
  if home < 0 || home >= n_clients then
    invalid_arg "Workload.skew_ramp: home outside [0, n_clients)";
  if phases = [] then invalid_arg "Workload.skew_ramp: need at least one phase";
  ignore
    (List.fold_left
       (fun prev p ->
         if not (p.rate_per_s > 0.0) then
           invalid_arg "Workload.skew_ramp: rates must be positive";
         if p.home_affinity < 0.0 || p.home_affinity > 1.0 then
           invalid_arg "Workload.skew_ramp: home_affinity outside [0, 1]";
         if not (p.until_ms > prev) then
           invalid_arg "Workload.skew_ramp: phase ends must be strictly ascending";
         p.until_ms)
       0.0 phases);
  (* Piecewise-Poisson arrivals on one entity, each phase with its own
     rate and locality: the contention-controller experiment ramps a key
     from cold-and-uniform through moderate home skew into sustained
     global pressure. Every arrival is a 1-token Acquire; releases come
     back through the driver's grant-driven lifetimes. All phases draw
     from the same rng, so the stream is one deterministic sequence. *)
  let out = ref [] and count = ref 0 in
  let t = ref 0.0 in
  List.iter
    (fun { until_ms; rate_per_s; home_affinity } ->
      let rate = rate_per_s /. 1000.0 (* per ms *) in
      let continue = ref true in
      while !continue do
        let next = !t +. Des.Rng.exponential rng ~rate in
        if next > until_ms then begin
          (* Restart the thinning clock at the boundary: the next phase's
             first gap is drawn fresh at its own rate. *)
          t := until_ms;
          continue := false
        end
        else begin
          t := next;
          let site =
            if Des.Rng.bool rng home_affinity then home
            else Des.Rng.int rng n_clients
          in
          out := { time_ms = !t; site; kind = Acquire; amount = 1; entity } :: !out;
          incr count
        end
      done)
    phases;
  let arr = Array.make !count { time_ms = 0.0; site = 0; kind = Read; amount = 0; entity = "" } in
  (* The stream was generated in time order; reverse the accumulator. *)
  List.iteri (fun i r -> arr.(!count - 1 - i) <- r) !out;
  arr

let merge streams =
  let arr = Array.concat streams in
  Array.sort compare_time arr;
  arr

let with_reads ~rng ~read_ratio stream =
  if read_ratio < 0.0 || read_ratio > 1.0 then
    invalid_arg "Workload.with_reads: ratio outside [0, 1]";
  Array.map
    (fun r -> if Des.Rng.bool rng read_ratio then { r with kind = Read } else r)
    stream

let duration_ms stream =
  let n = Array.length stream in
  if n = 0 then 0.0 else stream.(n - 1).time_ms

let count_kind stream kind =
  Array.fold_left (fun acc r -> if r.kind = kind then acc + 1 else acc) 0 stream
