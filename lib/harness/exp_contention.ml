(* The adaptive-contention scenario — the Mechanism API headline.

   One hot entity on a 5-site cluster, driven through a three-phase
   skew ramp:

   - P0 "cold": light uniform load every site serves from its own
     escrow share — any token movement is pure overhead;
   - P1 "skewed": demand concentrates on the home site at a rate its
     share cannot hold, while every peer has plenty spare — a
     one-conversation peer borrow is strictly cheaper than a consensus
     round;
   - P2 "pressure": the home rate keeps climbing until it needs nearly
     the whole global pool — peer-at-a-time borrowing starves (each
     conversation parks the queue for an RTT and brings back one peer's
     headroom), and only batched Avantan re-division tracks demand.

   Four arms replay the identical stream through the controller: three
   with the mechanism pinned (escrow-only, borrow-only,
   redistribute-only) and one adaptive. No single static policy wins
   every phase; the controller's job is to track whichever does. The
   verdict table checks exactly that, per phase, on committed
   throughput AND p99. *)

type phase_def = {
  ph_name : string;
  ph_until_ms : float;
  ph_rate_per_s : float;
  ph_affinity : float;
}

type scale = {
  phases : phase_def list;  (* contiguous, last one ends the stream *)
  duration_ms : float;
  hold_ms : float;  (* grant lifetime: the driver's grant-driven release *)
  quota : int;  (* the hot entity's global maximum *)
}

let scale ~quick =
  let p name until rate affinity =
    {
      ph_name = name;
      ph_until_ms = until;
      ph_rate_per_s = rate;
      ph_affinity = affinity;
    }
  in
  if quick then
    {
      phases =
        [
          p "cold" 8_000.0 100.0 0.2;
          p "skewed" 20_000.0 600.0 0.9;
          p "pressure" 32_000.0 1_800.0 0.4;
        ];
      duration_ms = 32_000.0;
      hold_ms = 1_000.0;
      quota = 2_000;
    }
  else
    {
      phases =
        [
          p "cold" 15_000.0 100.0 0.2;
          p "skewed" 40_000.0 600.0 0.9;
          p "pressure" 70_000.0 1_800.0 0.4;
        ];
      duration_ms = 70_000.0;
      hold_ms = 1_000.0;
      quota = 2_000;
    }

let n_sites = 5

let entity = "hotkey"

let home = 0

type arm = { a_id : string; a_label : string; a_policy : Samya.Config.Controller.policy }

let arms =
  [
    {
      a_id = "escrow";
      a_label = "static escrow";
      a_policy = Samya.Config.Controller.(Static Escrow);
    };
    {
      a_id = "borrow";
      a_label = "static borrow";
      a_policy = Samya.Config.Controller.(Static Borrow);
    };
    {
      a_id = "redistribute";
      a_label = "static redistribute";
      a_policy = Samya.Config.Controller.(Static Redistribute);
    };
    { a_id = "adaptive"; a_label = "adaptive"; a_policy = Samya.Config.Controller.Adaptive };
  ]

(* Every arm runs the controller — the statics just pin its policy, so
   the dispatch overhead is identical and the comparison isolates the
   decision, not the plumbing. *)
let config ~policy =
  {
    (Exp_common.samya_config Samya.Config.Majority) with
    (* The stream is reactive contention, not forecastable epochs. The
       redistribute mechanism still sizes asks via Equation 5. *)
    Samya.Config.prediction_enabled = false;
    (* An acquire is cheap; the interesting cost is token movement. *)
    local_processing_ms = 0.2;
    (* Let the hot share chase the ramp instead of parking demand for
       the default 2 s between instances. *)
    redistribution_cooldown_ms = 500.0;
    controller =
      {
        Samya.Config.Controller.enabled = true;
        policy;
        window_ms = 500.0;
        escalate_contention = 0.1;
        deescalate_margin = 0.5;
        borrow_fail_escalate = 0.3;
        p99_target_ms = 250.0;
        dwell_ms = 1_000.0;
        cooldown_ms = 500.0;
        borrow_quantum = 150;
        borrow_patience_ms = 500.0;
      };
  }

let requests ~scale:s =
  let rng = Des.Rng.stream Exp_common.seed 1019 in
  Trace.Workload.skew_ramp ~rng ~entity ~home ~n_clients:n_sites
    ~phases:
      (List.map
         (fun p ->
           {
             Trace.Workload.until_ms = p.ph_until_ms;
             rate_per_s = p.ph_rate_per_s;
             home_affinity = p.ph_affinity;
           })
         s.phases)
    ()

(* Interior boundaries for the driver's per-phase accounting: every
   phase end except the last (which is the stream end). *)
let boundaries ~scale:s =
  match List.rev s.phases with
  | [] -> [||]
  | _last :: rest -> Array.of_list (List.rev_map (fun p -> p.ph_until_ms) rest)

type capture = {
  scale : scale;
  arm : arm;
  cluster : Samya.Cluster.t;
  offered : int;
  sink : Obs.Sink.t option;
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  final_mechanism : string;  (* the home site's mechanism at the end *)
  flight : Obs.Flight_recorder.t;  (* always-on black box *)
  hot : Obs.Heavy_hitters.Windowed.w;  (* request-path hot-key sketch *)
  incidents : Obs.Watchdog.incident list;
}

let capture ?engine_jobs ?(observe = false) ~quick ~arm () =
  let s = scale ~quick in
  let hooks = Facade.samya_hooks () in
  let engine_jobs =
    match engine_jobs with Some n -> n | None -> Pool.engine_jobs ()
  in
  let regions = Exp_common.client_regions () in
  let cluster =
    Samya.Cluster.create ~seed:Exp_common.seed ~engine_jobs
      ~config:(config ~policy:arm.a_policy) ~regions
      ~on_protocol_event:(Facade.protocol_event_hook hooks)
      ~obs:(Facade.obs_port hooks) ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum:s.quota;
  let t_system =
    Facade.of_samya_cluster ~name:"Samya contention" ~hooks ~regions ~entity
      cluster
  in
  let sink =
    if observe then begin
      let sink =
        Obs.Sink.create ~now:(fun () -> Des.Engine.now t_system.Systems.engine) ()
      in
      t_system.Systems.subscribe sink;
      Some sink
    end
    else None
  in
  (* The always-on incident layer: mechanism switches land in the
     recorder, so the watchdog's flap rule watches the controller. *)
  let flight = Obs.Flight_recorder.create () in
  let hot = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:2_000.0 () in
  t_system.Systems.arm { Obs.Flight_recorder.recorder = flight; hot = Some hot };
  let slo = Obs.Slo.create ~window_ms:2_000.0 () in
  let requests = requests ~scale:s in
  let spec =
    {
      (Driver.default_spec ~client_regions:regions ~requests
         ~duration_ms:s.duration_ms)
      with
      drain_ms = 10_000.0;
      window_ms = 1_000.0;
      grant_driven_release_ms = Some s.hold_ms;
      obs = sink;
      slo = Some slo;
      flight = Some flight;
      phases = boundaries ~scale:s;
    }
  in
  let result = Driver.run ~t_system spec in
  {
    scale = s;
    arm;
    cluster;
    offered = Array.length requests;
    sink;
    slo;
    result;
    stats = t_system.Systems.stats ();
    final_mechanism =
      (match Samya.Site.mechanism (Samya.Cluster.site cluster home) ~entity with
      | Some m -> Samya.Config.Controller.mechanism_name m
      | None -> "-");
    flight;
    hot;
    incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events flight);
  }

(* Per-phase view: committed txn/s over the phase's wall time, p99 of
   its committed latencies. *)
type phase_row = { v_name : string; v_tps : float; v_p99 : float }

let phase_rows c =
  let starts =
    0.0 :: List.map (fun p -> p.ph_until_ms) c.scale.phases |> Array.of_list
  in
  List.mapi
    (fun i p ->
      let stats = c.result.Driver.by_phase.(i) in
      let dur_s = (p.ph_until_ms -. starts.(i)) /. 1000.0 in
      {
        v_name = p.ph_name;
        v_tps = float_of_int stats.Driver.p_committed /. dur_s;
        v_p99 = Stats.Sample_set.percentile stats.Driver.p_latencies 99.0;
      })
    c.scale.phases

(* The verdict: in each phase, the benchmark is the static arm with the
   highest committed throughput (ties broken by lower p99 — the Pareto
   winner). The adaptive arm must meet that arm's throughput AND its
   p99, both within tolerance. Latency is judged against the arm that
   actually achieves the throughput: an arm that posts a tiny p99 by
   rejecting every hard request (static escrow under pressure) is not a
   meaningful latency target. *)
let tps_tolerance = 0.10
let p99_tolerance = 0.25

(* Below one nearest-peer round trip, tail differences are noise: any
   mechanism that moves tokens at all pays at least this much on the
   requests that needed the movement, so the adaptive arm is never
   penalised for a sub-RTT gap (e.g. its escalation transient at a
   phase boundary). *)
let p99_floor_ms = 100.0

type verdict_row = {
  w_phase : string;
  w_best : string;  (* the benchmark static arm's label *)
  w_best_tps : float;
  w_best_p99 : float;
  w_adaptive_tps : float;
  w_adaptive_p99 : float;
  w_ok : bool;
}

let verdicts captures =
  let rows c = Array.of_list (phase_rows c) in
  let statics =
    List.filter (fun c -> c.arm.a_id <> "adaptive") captures
    |> List.map (fun c -> (c.arm.a_label, rows c))
  in
  let adaptive_capture =
    match List.find_opt (fun c -> c.arm.a_id = "adaptive") captures with
    | Some c -> c
    | None -> invalid_arg "Exp_contention.verdicts: no adaptive arm"
  in
  let adaptive = rows adaptive_capture in
  List.mapi
    (fun i p ->
      let label, best =
        match statics with
        | [] -> invalid_arg "Exp_contention.verdicts: no static arms"
        | (l0, r0) :: rest ->
            List.fold_left
              (fun (bl, (b : phase_row)) (label, rs) ->
                let r = rs.(i) in
                if
                  r.v_tps > b.v_tps
                  || (r.v_tps = b.v_tps && r.v_p99 < b.v_p99)
                then (label, r)
                else (bl, b))
              (l0, r0.(i)) rest
      in
      let a = adaptive.(i) in
      let tps_ok = a.v_tps >= best.v_tps *. (1.0 -. tps_tolerance) in
      let p99_ok =
        a.v_p99 <= Float.max p99_floor_ms (best.v_p99 *. (1.0 +. p99_tolerance))
      in
      {
        w_phase = p.ph_name;
        w_best = label;
        w_best_tps = best.v_tps;
        w_best_p99 = best.v_p99;
        w_adaptive_tps = a.v_tps;
        w_adaptive_p99 = a.v_p99;
        w_ok = tps_ok && p99_ok;
      })
    adaptive_capture.scale.phases

let run _ctx ~quick fmt =
  let s = scale ~quick in
  Format.fprintf fmt
    "@.== contention controller: skew ramp on one entity (%d tokens, %d sites) ==@."
    s.quota n_sites;
  Report.kv fmt
    (List.map
       (fun p ->
         ( "phase " ^ p.ph_name,
           Printf.sprintf "until %.0f s: %.0f req/s, %.0f%% home"
             (p.ph_until_ms /. 1000.0)
             p.ph_rate_per_s
             (100.0 *. p.ph_affinity) ))
       s.phases
    @ [ ("grant lifetime", Report.ms s.hold_ms) ]);
  let captures = List.map (fun arm -> capture ~quick ~arm ()) arms in
  (* Outcomes: totals per arm, with the mechanism traffic that produced
     them. *)
  Report.table fmt ~title:"contention: arm outcomes"
    ~header:
      [
        "policy"; "offered"; "committed"; "rejected"; "p50"; "p99";
        "redistributions"; "borrows"; "switches"; "final mech";
      ]
    ~rows:
      (List.map
         (fun c ->
           let r = c.result in
           [
             c.arm.a_label;
             string_of_int c.offered;
             string_of_int r.Driver.committed;
             string_of_int r.Driver.rejected;
             Report.ms (Driver.percentile r 50.0);
             Report.ms (Driver.percentile r 99.0);
             string_of_int c.stats.Systems.redistributions;
             string_of_int c.stats.Systems.borrows;
             string_of_int c.stats.Systems.mechanism_switches;
             c.final_mechanism;
           ])
         captures);
  (* The per-phase breakdown: who wins where. *)
  Report.table fmt ~title:"contention: committed txn/s by phase"
    ~header:("policy" :: List.map (fun p -> p.ph_name) s.phases)
    ~rows:
      (List.map
         (fun c ->
           c.arm.a_label :: List.map (fun v -> Report.f1 v.v_tps) (phase_rows c))
         captures);
  Report.table fmt ~title:"contention: p99 latency by phase"
    ~header:("policy" :: List.map (fun p -> p.ph_name) s.phases)
    ~rows:
      (List.map
         (fun c ->
           c.arm.a_label :: List.map (fun v -> Report.ms v.v_p99) (phase_rows c))
         captures);
  (* The figure: committed throughput over time — the static arms each
     fall off in the phase that defeats their mechanism, the adaptive
     line hugs the upper envelope. *)
  Report.series fmt ~title:"contention: committed throughput (figure)"
    ~unit_label:"txn/s"
    (List.map
       (fun c ->
         ( c.arm.a_label,
           Stats.Throughput.series c.result.Driver.throughput
             ~until_ms:(s.duration_ms -. 1.0) () ))
       captures);
  (* The verdict: adaptive vs the best static, per phase, both axes. *)
  Report.table fmt ~title:"contention: adaptive vs best static (verdict)"
    ~header:
      [ "phase"; "best static"; "best tps"; "adaptive tps"; "best p99"; "adaptive p99"; "verdict" ]
    ~rows:
      (List.map
         (fun w ->
           [
             w.w_phase;
             w.w_best;
             Report.f1 w.w_best_tps;
             Report.f1 w.w_adaptive_tps;
             Report.ms w.w_best_p99;
             Report.ms w.w_adaptive_p99;
             (if w.w_ok then "adaptive MATCHES" else "adaptive TRAILS");
           ])
         (verdicts captures));
  (* SLO + abort attribution per arm. *)
  List.iter
    (fun c ->
      let lines = Obs.Slo.report c.slo in
      Format.fprintf fmt "%s: SLO %s@." c.arm.a_label
        (if Obs.Slo.healthy lines then "healthy" else "VIOLATED"))
    captures;
  (* Token conservation per arm, after the drain: borrowing moves tokens
     ledger-to-ledger and must never mint or leak. *)
  List.iter
    (fun c ->
      match Samya.Cluster.check_invariant c.cluster ~entity ~maximum:s.quota with
      | Ok () -> Format.fprintf fmt "token conservation (%s): OK@." c.arm.a_label
      | Error reason ->
          Format.fprintf fmt "token conservation (%s): VIOLATED: %s@."
            c.arm.a_label reason)
    captures;
  (* The adaptive arm's controller decisions, straight from the black
     box: when it switched, from what, to what — the attribution a
     post-incident review starts from. *)
  (match List.find_opt (fun c -> c.arm.a_id = "adaptive") captures with
  | None -> ()
  | Some c ->
      let switches =
        List.filter
          (fun (ev : Obs.Flight_recorder.event) ->
            ev.Obs.Flight_recorder.kind = Obs.Flight_recorder.Mech)
          (Obs.Flight_recorder.events c.flight)
      in
      Format.fprintf fmt "@.mechanism timeline (adaptive, flight recorder):@.";
      List.iter
        (fun ev -> Format.fprintf fmt "  %s@." (Obs.Flight_recorder.line ev))
        switches;
      let by_rule =
        match Obs.Watchdog.count_by_rule c.incidents with
        | [] -> "none"
        | pairs ->
            String.concat ", "
              (List.map (fun (r, n) -> Printf.sprintf "%s %d" r n) pairs)
      in
      Format.fprintf fmt
        "flight recorder: %d events recorded (%d dropped), watchdog incidents: %d (%s)@."
        (Obs.Flight_recorder.recorded c.flight)
        (Obs.Flight_recorder.dropped c.flight)
        (List.length c.incidents) by_rule)
