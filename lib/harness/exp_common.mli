(** Shared experiment plumbing: canonical setup values (§5.2), duration
    scaling for quick runs, and the per-system run loop. *)

val entity : Samya.Types.entity
(** "VM" — every experiment tracks the VM entity. *)

val maximum : int
(** M_e = 5000, the paper's global limit. *)

val seed : int64

val client_regions : unit -> Geonet.Region.t array
(** The five evaluation regions. *)

val duration_ms : quick:bool -> full_min:float -> quick_min:float -> float

val samya_config : Samya.Config.variant -> Samya.Config.t

val window_ms : quick:bool -> float
(** Throughput window: 60 s full, 30 s quick. *)

type outcome = {
  label : string;
  result : Driver.result;
  redistributions : int;
  invariant : (unit, string) result;
}

val run_system :
  ?clients:Geonet.Region.t array ->
  label:string ->
  build:(unit -> Systems.facade) ->
  requests:Trace.Workload.request array ->
  duration_ms:float ->
  ?window_ms:float ->
  ?events:(Systems.facade -> Driver.event list) ->
  ?client_crash:(float * int) list ->
  unit ->
  outcome
(** Builds a fresh system, replays [requests], returns metrics plus the
    system's redistribution count and invariant verdict. [events] receives
    the built system so failure actions can close over it. *)

val throughput_series : outcome -> duration_ms:float -> (float * float) list

val pp_invariant : (unit, string) result -> string
