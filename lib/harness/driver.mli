(** Replays a request stream against a system and collects the paper's two
    performance measures: commit latency (client-measured, committed
    transactions only) and throughput (committed transactions per second,
    windowed).

    Requests are scheduled open-loop at their trace arrival times —
    backpressure never slows the offered load, which is what makes the hot
    entity hot. Failure schedules (server crashes, client crashes,
    partitions) are injected at their virtual times. *)

type event = { at_ms : float; action : unit -> unit }

type retry = {
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  base_backoff_ms : float;
      (** delay before attempt 2 (0 = naive immediate retry); doubled per
          further attempt *)
  max_backoff_ms : float;  (** cap on the doubled backoff *)
  jitter : float;
      (** fraction in [0, 1): each delay is scaled by [1 - jitter * u]
          with [u] uniform per draw (0 = deterministic backoff) *)
  jitter_seed : int64;
      (** root of the per-client jitter streams; client [c] draws from
          [Des.Rng.stream jitter_seed c] on its own lane, so retry
          schedules are byte-identical at any [--engine-jobs] *)
}
(** Client retry policy. Timed-out acquires/reads and shed
    ([Rejected_deadline]) requests of any kind re-enter the stream as
    causally-linked attempts on the same trace root; timed-out releases
    never retry (the original may have been applied late, and a doubled
    release would mint tokens). Attempts beyond [max_attempts] become the
    terminal timeout/shed outcome. *)

type spec = {
  client_regions : Geonet.Region.t array;
      (** region of each client index referenced by the stream's [site] *)
  requests : Trace.Workload.request array;  (** time-sorted *)
  duration_ms : float;  (** measurement horizon (relative to run start) *)
  drain_ms : float;  (** extra simulated time for in-flight replies *)
  window_ms : float;  (** throughput window width *)
  events : event list;  (** failure injections etc., relative times *)
  client_crash : (float * int) list;
      (** (time, client index): stop that client's requests from then on *)
  client_timeout_ms : float;
      (** replies slower than this count as failures, not commits (default
          infinity) *)
  grant_driven_release_ms : float option;
      (** [Some lifetime]: ignore the stream's release requests and have
          every granted acquire schedule its own release [lifetime] later —
          real VM lifetime semantics, used by the M_e sweep where a tight
          limit must throttle the token flow (default [None]) *)
  obs : Obs.Sink.t option;
      (** when set, the driver records one span per request on the
          issuing client's trace lane (tid 1000 + client, outcome in the
          span args) plus [driver.*] counters and the
          [driver.commit_latency_ms] histogram, and stamps a fresh causal
          trace root on every request so the system's work on its behalf
          is attributable (default [None]) *)
  slo : Obs.Slo.t option;
      (** when set, every counted reply feeds the SLO monitor — commits
          with their client-measured latency, rejections and unavailables
          as aborts. On the legacy backend the monitor is fed online; on a
          sharded system events buffer per client and replay in merged
          (time, client) order after the run, so the report is identical
          at every [--engine-jobs] setting (default [None]) *)
  flight : Obs.Flight_recorder.t option;
      (** when set alongside [slo], each violated objective is recorded
          into lane -1 of the recorder as the window closes, stamped with
          the window's nominal end in absolute virtual time — the same
          (ts, seq) stream whether breaches surface online or from the
          sharded post-run replay (default [None]) *)
  track_entities : bool;
      (** when set, counted replies of entity-named requests (the stream's
          [entity <> ""]) additionally accumulate per-entity outcome counts
          and latency aggregates into [result.by_entity] — the
          gateway-fleet per-key attribution (default [false]) *)
  retry : retry option;
      (** when set, timed-out and shed requests re-enter as linked retry
          attempts; with a finite [client_timeout_ms] a watchdog abandons
          each attempt at the timeout (default [None]: submit once and
          wait forever — the historical behaviour) *)
  deadline_budget_ms : float;
      (** per-workload deadline budget: entity-named requests are stamped
          with the absolute deadline [send time + budget], which sites
          propagate and enforce ({!Samya.Config.t.deadline_budget_ms})
          (default [infinity]: no deadline; must be positive) *)
  phases : float array;
      (** interior phase boundaries (ms, strictly ascending): requests
          bucket into [result.by_phase] by first-send time, so [n]
          boundaries produce [n + 1] phases. Retry attempts count toward
          the phase that originated the request. Default [[||]]: no
          per-phase accounting. *)
}

val default_spec : client_regions:Geonet.Region.t array -> requests:Trace.Workload.request array -> duration_ms:float -> spec

type entity_stats = {
  e_committed : int;
  e_rejected : int;
  e_unavailable : int;
  e_shed : int;  (** terminal deadline/admission sheds *)
  e_latency_sum_ms : float;  (** committed requests only *)
  e_latency_max_ms : float;
}

type phase_stats = {
  p_committed : int;
  p_aborted : int;  (** rejected + unavailable + shed + timed out *)
  p_latencies : Stats.Sample_set.t;  (** committed requests only, ms *)
}

type result = {
  committed : int;
  rejected : int;
  unavailable : int;
  shed : int;
      (** terminal [Rejected_deadline] outcomes (deadline or admission) *)
  timed_out : int;
      (** terminal timeouts: attempts the client abandoned with no retry
          left, plus late replies when no retry policy is set *)
  retries : int;  (** re-submitted attempts (excluded from [committed]) *)
  no_reply : int;  (** requests whose reply never arrived (blocked system) *)
  latencies : Stats.Sample_set.t;  (** committed requests only, ms *)
  throughput : Stats.Throughput.t;
  duration_ms : float;
  by_entity : (string * entity_stats) list;
      (** sorted by entity name; empty unless [spec.track_entities] — the
          merge across client slots is deterministic (slot order, then
          entity order), so sharded runs reproduce byte-identically *)
  by_phase : phase_stats array;
      (** one entry per phase of [spec.phases] (empty when no boundaries
          were given); merged across client slots in slot order, so
          sharded runs reproduce byte-identically *)
}

val run : t_system:Systems.facade -> spec -> result

val average_tps : result -> float

val percentile : result -> float -> float

val run_closed :
  t_system:Systems.facade ->
  client_regions:Geonet.Region.t array ->
  requests:Trace.Workload.request array ->
  duration_ms:float ->
  workers_per_client:int ->
  window_ms:float ->
  result
(** Closed-loop replay (Fig. 3h): each client region runs a fixed pool of
    workers that issue their stream's requests back to back, so measured
    throughput reflects per-request latency and server serialization —
    stream arrival times are ignored. *)
