(** Shared experiment context: the synthetic Azure-like trace, the trained
    forecasters, and the per-client workload builder (§5.1–5.2).

    Building the LSTM is the only expensive setup step, so a [context] is
    created once per bench/CLI invocation and shared by all experiments. *)

type context

val create : ?params:Trace.Azure_trace.params -> unit -> context

val prepare : context -> unit
(** Force the expensive fitted-model caches now, on the calling domain.
    The caches are mutex-guarded and safe to fill lazily from [Pool]
    workers, but pre-warming before a fan-out keeps the slow LSTM training
    off the parallel critical path. *)

val params : context -> Trace.Azure_trace.params

val base_trace : context -> Trace.Azure_trace.t
(** The un-shifted reference trace (the "single region" dataset). *)

val demand_forecasters : context -> (string * Ml.Forecaster.t) list
(** Random walk, ARIMA and LSTM fitted on the 80% train split of the
    demand series — the Table 2a models (LSTM training is cached). *)

val table2a : context -> (string * float) list
(** Model name → MAE (tokens) on the 20% test split, rolling one-step. *)

val runtime_forecaster : context -> Ml.Forecaster.t
(** The LSTM deployed in Samya's Prediction Module, trained on the acquire
    (VM-creation) series — the demand a site must cover with tokens.
    Cached. *)

val workload :
  context ->
  client_regions:Geonet.Region.t array ->
  duration_ms:float ->
  ?compress:int ->
  ?read_ratio:float ->
  ?demand_scale:float ->
  ?usage_scale:float ->
  ?start_hours:float ->
  seed:int64 ->
  unit ->
  Trace.Workload.request array
(** One request stream per client index (phase-shifted to its region,
    §5.1.2), merged and time-sorted. [compress] is the interval shrink
    factor (default 60: 5 min → 5 s). [demand_scale] scales the per-client
    churn volume; [usage_scale] (default [demand_scale]) scales the net
    usage footprint independently — the scalability experiment adds sites
    with full request intensity but proportionally smaller footprints so
    the aggregate stays comparable to the limit. [start_hours] skips into
    the original trace (quick runs start near the daily peak so contention
    appears within a short window). *)
