let entity = Exp_common.entity
let maximum = Exp_common.maximum
let seed = Exp_common.seed

let samya_builder ctx variant =
  (* Force the fitted forecaster now, before the builder is handed to a
     pool worker: training happens once, off the parallel critical path. *)
  let forecaster = Lab.runtime_forecaster ctx in
  fun () ->
    Systems.samya ~seed
      ~config:(Exp_common.samya_config variant)
      ~regions:(Exp_common.client_regions ())
      ~forecaster ~entity ~maximum ()

let failure_systems ctx : (string * (unit -> Systems.facade)) list =
  [
    ("Samya w/ Av.[(n+1)/2]", samya_builder ctx Samya.Config.Majority);
    ("Samya w/ Av.[*]", samya_builder ctx Samya.Config.Star);
    ("MultiPaxSys", fun () -> Systems.multipaxsys ~seed ~entity ~maximum ());
  ]

let print_outcomes fmt ~title ~duration_ms outcomes =
  let series =
    List.map
      (fun (o : Exp_common.outcome) -> (o.label, Exp_common.throughput_series o ~duration_ms))
      outcomes
  in
  Report.series fmt ~title ~unit_label:"txn/s" series;
  Report.table fmt ~title:"Totals"
    ~header:[ "system"; "committed"; "rejected"; "no-reply"; "redistributions" ]
    ~rows:
      (List.map
         (fun (o : Exp_common.outcome) ->
           [
             o.label;
             string_of_int o.result.Driver.committed;
             string_of_int o.result.Driver.rejected;
             string_of_int o.result.Driver.no_reply;
             string_of_int o.redistributions;
           ])
         outcomes)

let run_crash ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:50.0 ~quick_min:10.0 in
  let phase = duration_ms /. 5.0 in
  (* Crash order: the most distant regions first; the fifth (us-west1 for
     Samya, the leader's region for MultiPaxSys) never crashes. Server
     index 4, 3, 2, 1 in each system's own placement; clients of the
     matching Samya region die with their region. *)
  let crash_steps = [ (phase, 4); (2.0 *. phase, 3); (3.0 *. phase, 2); (4.0 *. phase, 1) ] in
  (* Start at the daily ramp and raise the usage footprint so regional
     exhaustion — the thing redistribution exists for — happens throughout
     the window. *)
  let requests =
    Lab.workload ctx ~client_regions:(Exp_common.client_regions ()) ~duration_ms
      ~usage_scale:2.2 ~start_hours:6.0 ~seed ()
  in
  Format.fprintf fmt
    "@.== Fig 3c: throughput under crash failures (one region crashes every %.1f min) ==@."
    (Report.minutes_of_ms phase);
  let outcomes =
    Pool.map
      (fun (label, build) ->
        Exp_common.run_system ~label ~build ~requests ~duration_ms
          ~window_ms:(Exp_common.window_ms ~quick)
          ~events:(fun t_system ->
            List.map
              (fun (at_ms, site) ->
                { Driver.at_ms; action = (fun () -> t_system.Systems.crash_site site) })
              crash_steps)
          ~client_crash:(List.map (fun (at, site) -> (at, site)) crash_steps)
          ())
      (failure_systems ctx)
  in
  print_outcomes fmt ~title:"Fig 3c: throughput as regions crash" ~duration_ms outcomes;
  (* The headline shape: compare the two variants after majority loss. *)
  let late label =
    let o =
      match List.find_opt (fun (o : Exp_common.outcome) -> o.label = label) outcomes with
      | Some o -> o
      | None ->
          failwith
            (Printf.sprintf
               "fig3c: no outcome labelled %S (have: %s) — a failure_systems \
                label changed without updating the headline comparison"
               label
               (String.concat ", "
                  (List.map (fun (o : Exp_common.outcome) -> o.label) outcomes)))
    in
    List.filter (fun (t, _) -> t >= 3.0 *. phase) (Exp_common.throughput_series o ~duration_ms)
    |> List.map snd |> List.fold_left ( +. ) 0.0
  in
  Report.kv fmt
    [
      ( "after majority loss (last 2 phases)",
        Printf.sprintf "maj=%.0f star=%.0f mp=%.0f (sum of window tps; paper: star > maj, mp = 0)"
          (late "Samya w/ Av.[(n+1)/2]") (late "Samya w/ Av.[*]") (late "MultiPaxSys") );
    ]

let run_partition ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:30.0 ~quick_min:9.0 in
  let partition_at = duration_ms /. 3.0 in
  let groups = [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let requests =
    Lab.workload ctx ~client_regions:(Exp_common.client_regions ()) ~duration_ms
      ~usage_scale:2.2 ~start_hours:6.0 ~seed ()
  in
  Format.fprintf fmt "@.== Fig 3d: 3-2 network partition at t=%.1f min ==@."
    (Report.minutes_of_ms partition_at);
  let outcomes =
    Pool.map
      (fun (label, build) ->
        Exp_common.run_system ~label ~build ~requests ~duration_ms
          ~window_ms:(Exp_common.window_ms ~quick)
          ~events:(fun t_system ->
            [
              {
                Driver.at_ms = partition_at;
                action = (fun () -> t_system.Systems.partition groups);
              };
            ])
          ())
      (failure_systems ctx)
  in
  print_outcomes fmt ~title:"Fig 3d: throughput during a 3-2 partition" ~duration_ms
    outcomes
