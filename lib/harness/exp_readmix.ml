let entity = Exp_common.entity
let maximum = Exp_common.maximum
let seed = Exp_common.seed

let ratios = [ 0.0; 0.2; 0.35; 0.5; 0.65; 0.8; 0.95 ]

let run ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:6.0 ~quick_min:3.0 in
  let workers_per_client = 24 in
  let regions = Exp_common.client_regions () in
  let forecaster = Lab.runtime_forecaster ctx in
  Format.fprintf fmt
    "@.== Fig 3h: read-only transaction ratio sweep (closed loop, %d workers/region) ==@."
    workers_per_client;
  let builders : (string * (unit -> Systems.facade)) list =
    [
      ( "Avantan[(n+1)/2]",
        fun () ->
          Systems.samya ~seed
            ~config:(Exp_common.samya_config Samya.Config.Majority)
            ~regions ~forecaster ~entity ~maximum () );
      ( "Avantan[*]",
        fun () ->
          Systems.samya ~seed
            ~config:(Exp_common.samya_config Samya.Config.Star)
            ~regions ~forecaster ~entity ~maximum () );
      ("MultiPaxSys", fun () -> Systems.multipaxsys ~seed ~entity ~maximum ());
    ]
  in
  let measure ratio (label, build) =
    let requests =
      Lab.workload ctx ~client_regions:regions ~duration_ms:(duration_ms *. 4.0)
        ~read_ratio:ratio ~start_hours:6.0 ~seed ()
    in
    let t_system = build () in
    let result =
      Driver.run_closed ~t_system ~client_regions:regions ~requests ~duration_ms
        ~workers_per_client ~window_ms:(Exp_common.window_ms ~quick)
    in
    (label, Driver.average_tps result)
  in
  let per_ratio =
    Pool.map (fun ratio -> (ratio, Pool.map (measure ratio) builders)) ratios
  in
  Report.table fmt ~title:"Fig 3h: average throughput vs read ratio"
    ~header:("read ratio" :: List.map fst builders)
    ~rows:
      (List.map
         (fun (ratio, measured) ->
           Report.f2 ratio :: List.map (fun (_, tps) -> Report.f1 tps) measured)
         per_ratio);
  (* Locate the crossover between Samya (majority) and MultiPaxSys. *)
  let crossover =
    List.fold_left
      (fun acc (ratio, measured) ->
        match acc with
        | Some _ -> acc
        | None ->
            let samya_tps = List.assoc "Avantan[(n+1)/2]" measured in
            let mp_tps = List.assoc "MultiPaxSys" measured in
            if mp_tps >= samya_tps then Some ratio else None)
      None per_ratio
  in
  Report.kv fmt
    [
      ( "MultiPaxSys overtakes Samya at read ratio",
        (match crossover with
        | Some ratio -> Report.f2 ratio
        | None -> "never (within sweep)")
        ^ "  (paper: ~0.65)" );
    ]
