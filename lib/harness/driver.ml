type event = { at_ms : float; action : unit -> unit }

type spec = {
  client_regions : Geonet.Region.t array;
  requests : Trace.Workload.request array;
  duration_ms : float;
  drain_ms : float;
  window_ms : float;
  events : event list;
  client_crash : (float * int) list;
  client_timeout_ms : float;
  grant_driven_release_ms : float option;
      (* Some lifetime: ignore the stream's releases; each granted acquire
         schedules its own release that much later (real VM lifetimes) *)
  obs : Obs.Sink.t option;
      (* when set, the driver records per-request spans (client lanes,
         tid 1000+) and driver.* metrics into the sink *)
  slo : Obs.Slo.t option;
      (* when set, every counted reply feeds the online SLO monitor:
         commits with their latency, rejections/unavailables as aborts *)
  track_entities : bool;
      (* when set, counted replies of entity-named requests additionally
         accumulate per-entity outcome counts and latency sums (the
         gateway-fleet per-key attribution) *)
}

let default_spec ~client_regions ~requests ~duration_ms =
  {
    client_regions;
    requests;
    duration_ms;
    drain_ms = 30_000.0;
    window_ms = 10_000.0;
    events = [];
    client_crash = [];
    client_timeout_ms = infinity;
    grant_driven_release_ms = None;
    obs = None;
    slo = None;
    track_entities = false;
  }

type entity_stats = {
  e_committed : int;
  e_rejected : int;
  e_unavailable : int;
  e_latency_sum_ms : float;
  e_latency_max_ms : float;
}

type result = {
  committed : int;
  rejected : int;
  unavailable : int;
  no_reply : int;
  latencies : Stats.Sample_set.t;
  throughput : Stats.Throughput.t;
  duration_ms : float;
  by_entity : (string * entity_stats) list;
}

(* Client lanes live above the site lanes in the trace (tid 1000+). *)
let client_tid client = 1000 + client

let span_name = function
  | Trace.Workload.Acquire -> "req.acquire"
  | Trace.Workload.Release -> "req.release"
  | Trace.Workload.Read -> "req.read"

(* Per-slot accumulators. On the legacy single-engine path there is one
   slot and accumulation is exactly the historical global order (keeping
   float sums bit-identical to earlier releases). On a sharded system a
   client's replies execute on its region's lane, concurrently with other
   lanes, so each client accumulates into its own slot and the slots are
   merged in client order after the run — an order that is a function of
   the simulation alone, never of the domain count. *)
type ent_acc = {
  mutable ec : int;
  mutable er : int;
  mutable eu : int;
  mutable elsum : float;
  mutable elmax : float;
}

type acc = {
  slots : int;
  lat : Stats.Sample_set.t array;
  tp : Stats.Throughput.t array;
  committed : int array;
  rejected : int array;
  unavailable : int array;
  submitted : int array;
  replied : int array;
  ents : (string, ent_acc) Hashtbl.t array;
  (* deferred SLO events on a sharded system, newest first per slot:
     (reply time rel. t0, commit latency, was a commit) *)
  slo_buf : (float * float * bool) list ref array;
}

let acc_create ~lanes ~n_clients ~window_ms =
  let slots = if lanes > 1 then n_clients else 1 in
  {
    slots;
    lat = Array.init slots (fun _ -> Stats.Sample_set.create ());
    tp = Array.init slots (fun _ -> Stats.Throughput.create ~window_ms);
    committed = Array.make slots 0;
    rejected = Array.make slots 0;
    unavailable = Array.make slots 0;
    submitted = Array.make slots 0;
    replied = Array.make slots 0;
    ents = Array.init slots (fun _ -> Hashtbl.create 16);
    slo_buf = Array.init slots (fun _ -> ref []);
  }

let ent_for tbl entity =
  match Hashtbl.find_opt tbl entity with
  | Some e -> e
  | None ->
      let e = { ec = 0; er = 0; eu = 0; elsum = 0.0; elmax = 0.0 } in
      Hashtbl.add tbl entity e;
      e

let acc_slot acc client = if acc.slots = 1 then 0 else client

let acc_result acc ~duration_ms : result =
  let sum = Array.fold_left ( + ) 0 in
  let latencies =
    if acc.slots = 1 then acc.lat.(0)
    else begin
      let merged = Stats.Sample_set.create () in
      Array.iter (fun s -> Stats.Sample_set.merge_into s ~into:merged) acc.lat;
      merged
    end
  in
  let throughput =
    if acc.slots = 1 then acc.tp.(0)
    else begin
      let merged = Stats.Throughput.create ~window_ms:(Stats.Throughput.window_ms acc.tp.(0)) in
      Array.iter (fun t -> Stats.Throughput.merge_into t ~into:merged) acc.tp;
      merged
    end
  in
  (* Per-entity merge: slots in slot order, each slot's entries in entity
     order — a deterministic order whatever the hash-table iteration
     happens to be, so sharded runs stay reproducible. *)
  let by_entity =
    let merged : (string, ent_acc) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun tbl ->
        Hashtbl.fold (fun entity e l -> (entity, e) :: l) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (entity, (e : ent_acc)) ->
               let m = ent_for merged entity in
               m.ec <- m.ec + e.ec;
               m.er <- m.er + e.er;
               m.eu <- m.eu + e.eu;
               m.elsum <- m.elsum +. e.elsum;
               if e.elmax > m.elmax then m.elmax <- e.elmax))
      acc.ents;
    Hashtbl.fold (fun entity m l -> (entity, m) :: l) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (entity, (m : ent_acc)) ->
           ( entity,
             {
               e_committed = m.ec;
               e_rejected = m.er;
               e_unavailable = m.eu;
               e_latency_sum_ms = m.elsum;
               e_latency_max_ms = m.elmax;
             } ))
  in
  {
    committed = sum acc.committed;
    rejected = sum acc.rejected;
    unavailable = sum acc.unavailable;
    no_reply = sum acc.submitted - sum acc.replied;
    latencies;
    throughput;
    duration_ms;
    by_entity;
  }

let run ~(t_system : Systems.facade) spec =
  let n_clients = Array.length spec.client_regions in
  let engines = Array.map t_system.Systems.sched_region spec.client_regions in
  let lanes = t_system.Systems.engine_lanes in
  let t0 = t_system.Systems.now () in
  let acc = acc_create ~lanes ~n_clients ~window_ms:spec.window_ms in
  let cutoffs = Array.make n_clients infinity in
  List.iter (fun (at, client) -> cutoffs.(client) <- Float.min cutoffs.(client) at)
    spec.client_crash;
  (* Observability: resolve the driver's instruments once, name the
     client lanes. The un-observed path keeps a single None check. *)
  let instrument =
    match spec.obs with
    | None -> None
    | Some sink ->
        let m = sink.Obs.Sink.metrics in
        Array.iteri
          (fun i region ->
            Obs.Span.thread_name sink.Obs.Sink.spans ~tid:(client_tid i)
              (Printf.sprintf "client %d (%s)" i (Geonet.Region.name region)))
          spec.client_regions;
        Some
          ( sink,
            Obs.Metrics.histogram m "driver.commit_latency_ms",
            Obs.Metrics.counter m "driver.committed",
            Obs.Metrics.counter m "driver.rejected",
            Obs.Metrics.counter m "driver.unavailable" )
  in
  (* Failure schedule: crash/partition/heal actions mutate state every
     lane reads, so on a sharded system they run at window barriers. *)
  List.iter
    (fun { at_ms; action } ->
      t_system.Systems.schedule_global ~time_ms:(t0 +. at_ms) action)
    spec.events;
  (* Open-loop replay with chained dispatchers to keep the heap small.
     Clients track their outstanding tokens: a release is only issued
     against tokens actually granted (§3.2 — "an individual client never
     returns more tokens than what it has acquired"), so rejected acquires
     do not spawn phantom releases that would quietly refill the pool. *)
  let n = Array.length spec.requests in
  let outstanding = Array.make n_clients 0 in
  let rec issue ~synthetic (request : Trace.Workload.request) =
    let client = request.site in
    let engine = engines.(client) in
    let s = acc_slot acc client in
    let skip_release =
      (not synthetic)
      && request.kind = Trace.Workload.Release
      && (outstanding.(client) < request.amount || spec.grant_driven_release_ms <> None)
    in
    if
      request.time_ms < cutoffs.(client)
      && request.time_ms <= spec.duration_ms
      && not skip_release
    then begin
      acc.submitted.(s) <- acc.submitted.(s) + 1;
      let sent_at = Des.Engine.now engine in
      let reply response =
        acc.replied.(s) <- acc.replied.(s) + 1;
        (match (request.kind, response) with
        | Trace.Workload.Acquire, Samya.Types.Granted -> (
            outstanding.(client) <- outstanding.(client) + request.amount;
            match spec.grant_driven_release_ms with
            | Some lifetime_ms ->
                Des.Engine.schedule engine ~delay_ms:lifetime_ms (fun () ->
                    (* A grant-driven release: these tokens are held by
                       construction. *)
                    issue ~synthetic:true
                      { request with kind = Trace.Workload.Release; time_ms = 0.0 })
            | None -> ())
        | Trace.Workload.Release, Samya.Types.Granted ->
            (* Settled on grant, not on issue: a shed release (never
               replied) must not leak the client's holdings. *)
            outstanding.(client) <- outstanding.(client) - request.amount
        | _ -> ());
        let now = Des.Engine.now engine in
        (* Replies to crashed or timed-out clients are discarded (the
           timed-out case counts in [no_reply]). *)
        if now -. t0 < cutoffs.(client) && now -. sent_at <= spec.client_timeout_ms
        then begin
          (match response with
          | Samya.Types.Granted | Samya.Types.Read_result _ ->
              acc.committed.(s) <- acc.committed.(s) + 1;
              Stats.Sample_set.add acc.lat.(s) (now -. sent_at);
              Stats.Throughput.record acc.tp.(s) ~time_ms:(now -. t0)
          | Samya.Types.Rejected -> acc.rejected.(s) <- acc.rejected.(s) + 1
          | Samya.Types.Unavailable -> acc.unavailable.(s) <- acc.unavailable.(s) + 1);
          if spec.track_entities && request.entity <> "" then begin
            let e = ent_for acc.ents.(s) request.entity in
            match response with
            | Samya.Types.Granted | Samya.Types.Read_result _ ->
                e.ec <- e.ec + 1;
                let l = now -. sent_at in
                e.elsum <- e.elsum +. l;
                if l > e.elmax then e.elmax <- l
            | Samya.Types.Rejected -> e.er <- e.er + 1
            | Samya.Types.Unavailable -> e.eu <- e.eu + 1
          end;
          match spec.slo with
          | None -> ()
          | Some slo ->
              let committed =
                match response with
                | Samya.Types.Granted | Samya.Types.Read_result _ -> true
                | Samya.Types.Rejected | Samya.Types.Unavailable -> false
              in
              if acc.slots = 1 then
                (* Legacy backend: reply order is globally sequential, so
                   the shared monitor is fed online (the historical path,
                   byte-identical to earlier releases). *)
                if committed then
                  Obs.Slo.commit slo ~now_ms:(now -. t0)
                    ~latency_ms:(now -. sent_at)
                else Obs.Slo.abort slo ~now_ms:(now -. t0)
              else
                (* Sharded backend: lanes reply concurrently, so events are
                   buffered per slot and replayed in merged time order
                   after the run — deterministic at any domain count. *)
                acc.slo_buf.(s) :=
                  (now -. t0, now -. sent_at, committed) :: !(acc.slo_buf.(s))
        end
      in
      let region = spec.client_regions.(client) in
      let submit ~reply =
        if request.entity <> "" then
          (* Multi-entity path: the request names its own key; the facade's
             generic verb carries it to the cluster untranslated. *)
          let r =
            match request.kind with
            | Trace.Workload.Acquire ->
                Samya.Types.Acquire
                  { entity = request.entity; amount = request.amount }
            | Trace.Workload.Release ->
                Samya.Types.Release
                  { entity = request.entity; amount = request.amount }
            | Trace.Workload.Read -> Samya.Types.Read { entity = request.entity }
          in
          t_system.Systems.submit ~region r ~reply
        else
          match request.kind with
          | Trace.Workload.Acquire ->
              t_system.Systems.acquire ~region ~amount:request.amount ~reply
          | Trace.Workload.Release ->
              t_system.Systems.release ~region ~amount:request.amount ~reply
          | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
      in
      match instrument with
      | None -> submit ~reply
      | Some (sink, lat_h, c_commit, c_rej, c_unavail) ->
          let span =
            Obs.Span.start sink.Obs.Sink.spans ~cat:"request"
              ~tid:(client_tid client) (span_name request.kind)
          in
          (* Root of the causal trace: everything the system does on this
             request's behalf (hops, queueing, protocol phases) inherits
             the context through the engine's ambient propagation. *)
          let trace = Des.Engine.fresh_id engine in
          Obs.Causal.record sink.Obs.Sink.causal
            (Obs.Causal.Submitted
               {
                 trace;
                 client;
                 kind = span_name request.kind;
                 entity = request.entity;
                 ts = sent_at;
               });
          let reply response =
            let now = Des.Engine.now engine in
            let outcome =
              match response with
              | Samya.Types.Granted | Samya.Types.Read_result _ ->
                  Obs.Metrics.incr c_commit;
                  Obs.Metrics.observe lat_h (now -. sent_at);
                  "granted"
              | Samya.Types.Rejected ->
                  Obs.Metrics.incr c_rej;
                  "rejected"
              | Samya.Types.Unavailable ->
                  Obs.Metrics.incr c_unavail;
                  "unavailable"
            in
            Obs.Span.finish sink.Obs.Sink.spans
              ~args:[ ("outcome", outcome) ]
              span;
            Obs.Causal.record sink.Obs.Sink.causal
              (Obs.Causal.Completed { trace; outcome; ts = now });
            reply response
          in
          Des.Engine.with_context engine
            (Des.Trace_context.root ~trace)
            (fun () -> submit ~reply)
    end
  in
  if lanes <= 1 then begin
    (* Legacy: one global chain, exactly the historical scheduling shape
       (byte-identical event order to earlier releases). *)
    let engine = t_system.Systems.engine in
    let rec dispatch i =
      if i < n then begin
        let request = spec.requests.(i) in
        if request.Trace.Workload.time_ms > spec.duration_ms then ()
        else
          Des.Engine.schedule_at engine ~time_ms:(t0 +. request.Trace.Workload.time_ms)
            (fun () ->
              issue ~synthetic:false request;
              (* Schedule the next arrival lazily so the event heap stays
                 small even for million-request streams. *)
              dispatch (i + 1))
      end
    in
    dispatch 0
  end
  else begin
    (* Sharded: one chain per client on the client's own lane, so a lane
       only ever schedules onto itself and the global chain never forces
       a cross-lane dependency between consecutive arrivals. *)
    let per_client = Array.make n_clients [] in
    for i = n - 1 downto 0 do
      let client = spec.requests.(i).Trace.Workload.site in
      per_client.(client) <- i :: per_client.(client)
    done;
    Array.iteri
      (fun client indices ->
        let engine = engines.(client) in
        let rec dispatch = function
          | [] -> ()
          | i :: rest ->
              let request = spec.requests.(i) in
              if request.Trace.Workload.time_ms > spec.duration_ms then ()
              else
                Des.Engine.schedule_at engine
                  ~time_ms:(t0 +. request.Trace.Workload.time_ms)
                  (fun () ->
                    issue ~synthetic:false request;
                    dispatch rest)
        in
        dispatch indices)
      per_client
  end;
  t_system.Systems.run_until (t0 +. spec.duration_ms +. spec.drain_ms);
  (match spec.slo with
  | Some slo when acc.slots > 1 ->
      (* Replay the buffered SLO events in (time, slot, arrival) order —
         a pure function of the simulation, never of the domain count. *)
      let events = ref [] in
      Array.iteri
        (fun s buf ->
          List.iteri
            (fun i (t, lat, committed) -> events := (t, s, i, lat, committed) :: !events)
            (List.rev !buf))
        acc.slo_buf;
      let arr = Array.of_list !events in
      Array.sort
        (fun (ta, sa, ia, _, _) (tb, sb, ib, _, _) ->
          let c = Float.compare ta tb in
          if c <> 0 then c
          else
            let c = Int.compare sa sb in
            if c <> 0 then c else Int.compare ia ib)
        arr;
      Array.iter
        (fun (t, _, _, lat, committed) ->
          if committed then Obs.Slo.commit slo ~now_ms:t ~latency_ms:lat
          else Obs.Slo.abort slo ~now_ms:t)
        arr
  | _ -> ());
  acc_result acc ~duration_ms:spec.duration_ms

let average_tps (result : result) =
  float_of_int result.committed /. (result.duration_ms /. 1000.0)

let percentile (result : result) p = Stats.Sample_set.percentile result.latencies p

let run_closed ~(t_system : Systems.facade) ~client_regions ~requests ~duration_ms
    ~workers_per_client ~window_ms =
  let n_clients = Array.length client_regions in
  let engines = Array.map t_system.Systems.sched_region client_regions in
  let lanes = t_system.Systems.engine_lanes in
  let t0 = t_system.Systems.now () in
  let acc = acc_create ~lanes ~n_clients ~window_ms in
  (* Partition the stream per client; workers consume their client's
     requests back to back (arrival times are ignored: the loop is closed).
     All of a client's state — its queue, outstanding tokens, worker
     chains — lives on its region's lane. *)
  let per_client = Array.map (fun _ -> Queue.create ()) client_regions in
  Array.iter
    (fun (r : Trace.Workload.request) -> Queue.push r per_client.(r.site))
    requests;
  let no_reply = Array.make acc.slots 0 in
  let outstanding = Array.make n_clients 0 in
  let rec worker client =
    let engine = engines.(client) in
    let s = acc_slot acc client in
    if Des.Engine.now engine -. t0 < duration_ms then begin
      match Queue.take_opt per_client.(client) with
      | None -> ()
      | Some request ->
          if request.kind = Trace.Workload.Release && outstanding.(client) < request.amount
          then worker client (* nothing to give back yet; skip *)
          else begin
            let sent_at = Des.Engine.now engine in
            (* A dropped request (a shed transaction never replies) must not
               kill the worker: a watchdog moves it on after a timeout. *)
            let settled = ref false in
            let watchdog =
              Des.Engine.timer engine ~delay_ms:5_000.0 (fun () ->
                  if not !settled then begin
                    settled := true;
                    no_reply.(s) <- no_reply.(s) + 1;
                    worker client
                  end)
            in
            let reply response =
              if not !settled then begin
                settled := true;
                Des.Engine.cancel watchdog;
                let now = Des.Engine.now engine in
                (match (request.kind, response) with
                | Trace.Workload.Acquire, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) + request.amount
                | Trace.Workload.Release, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) - request.amount
                | _ -> ());
                (match response with
                | Samya.Types.Granted | Samya.Types.Read_result _ ->
                    if now -. t0 <= duration_ms then begin
                      acc.committed.(s) <- acc.committed.(s) + 1;
                      Stats.Sample_set.add acc.lat.(s) (now -. sent_at);
                      Stats.Throughput.record acc.tp.(s) ~time_ms:(now -. t0)
                    end
                | Samya.Types.Rejected -> acc.rejected.(s) <- acc.rejected.(s) + 1
                | Samya.Types.Unavailable ->
                    acc.unavailable.(s) <- acc.unavailable.(s) + 1);
                worker client
              end
            in
            let region = client_regions.(client) in
            match request.kind with
            | Trace.Workload.Acquire ->
                t_system.Systems.acquire ~region ~amount:request.amount ~reply
            | Trace.Workload.Release ->
                t_system.Systems.release ~region ~amount:request.amount ~reply
            | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
          end
    end
  in
  Array.iteri
    (fun client _ ->
      for _ = 1 to workers_per_client do
        worker client
      done)
    client_regions;
  t_system.Systems.run_until (t0 +. duration_ms +. 10_000.0);
  let result = acc_result acc ~duration_ms in
  { result with no_reply = Array.fold_left ( + ) 0 no_reply }
