type event = { at_ms : float; action : unit -> unit }

type spec = {
  client_regions : Geonet.Region.t array;
  requests : Trace.Workload.request array;
  duration_ms : float;
  drain_ms : float;
  window_ms : float;
  events : event list;
  client_crash : (float * int) list;
  client_timeout_ms : float;
  grant_driven_release_ms : float option;
      (* Some lifetime: ignore the stream's releases; each granted acquire
         schedules its own release that much later (real VM lifetimes) *)
  obs : Obs.Sink.t option;
      (* when set, the driver records per-request spans (client lanes,
         tid 1000+) and driver.* metrics into the sink *)
  slo : Obs.Slo.t option;
      (* when set, every counted reply feeds the online SLO monitor:
         commits with their latency, rejections/unavailables as aborts *)
}

let default_spec ~client_regions ~requests ~duration_ms =
  {
    client_regions;
    requests;
    duration_ms;
    drain_ms = 30_000.0;
    window_ms = 10_000.0;
    events = [];
    client_crash = [];
    client_timeout_ms = infinity;
    grant_driven_release_ms = None;
    obs = None;
    slo = None;
  }

type result = {
  committed : int;
  rejected : int;
  unavailable : int;
  no_reply : int;
  latencies : Stats.Sample_set.t;
  throughput : Stats.Throughput.t;
  duration_ms : float;
}

(* Client lanes live above the site lanes in the trace (tid 1000+). *)
let client_tid client = 1000 + client

let span_name = function
  | Trace.Workload.Acquire -> "req.acquire"
  | Trace.Workload.Release -> "req.release"
  | Trace.Workload.Read -> "req.read"

let run ~(t_system : Systems.facade) spec =
  let engine = t_system.Systems.engine in
  let t0 = Des.Engine.now engine in
  let latencies = Stats.Sample_set.create () in
  let throughput = Stats.Throughput.create ~window_ms:spec.window_ms in
  let committed = ref 0 and rejected = ref 0 and unavailable = ref 0 in
  let submitted = ref 0 and replied = ref 0 in
  let cutoffs = Array.make (Array.length spec.client_regions) infinity in
  List.iter (fun (at, client) -> cutoffs.(client) <- Float.min cutoffs.(client) at)
    spec.client_crash;
  (* Observability: resolve the driver's instruments once, name the
     client lanes. The un-observed path keeps a single None check. *)
  let instrument =
    match spec.obs with
    | None -> None
    | Some sink ->
        let m = sink.Obs.Sink.metrics in
        Array.iteri
          (fun i region ->
            Obs.Span.thread_name sink.Obs.Sink.spans ~tid:(client_tid i)
              (Printf.sprintf "client %d (%s)" i (Geonet.Region.name region)))
          spec.client_regions;
        Some
          ( sink,
            Obs.Metrics.histogram m "driver.commit_latency_ms",
            Obs.Metrics.counter m "driver.committed",
            Obs.Metrics.counter m "driver.rejected",
            Obs.Metrics.counter m "driver.unavailable" )
  in
  (* Failure schedule. *)
  List.iter
    (fun { at_ms; action } -> Des.Engine.schedule_at engine ~time_ms:(t0 +. at_ms) action)
    spec.events;
  (* Open-loop replay, one chained dispatcher to keep the heap small.
     Clients track their outstanding tokens: a release is only issued
     against tokens actually granted (§3.2 — "an individual client never
     returns more tokens than what it has acquired"), so rejected acquires
     do not spawn phantom releases that would quietly refill the pool. *)
  let n = Array.length spec.requests in
  let outstanding = Array.make (Array.length spec.client_regions) 0 in
  let rec issue ~synthetic (request : Trace.Workload.request) =
    let client = request.site in
    let skip_release =
      (not synthetic)
      && request.kind = Trace.Workload.Release
      && (outstanding.(client) < request.amount || spec.grant_driven_release_ms <> None)
    in
    if
      request.time_ms < cutoffs.(client)
      && request.time_ms <= spec.duration_ms
      && not skip_release
    then begin
      incr submitted;
      let sent_at = Des.Engine.now engine in
      let reply response =
        incr replied;
        (match (request.kind, response) with
        | Trace.Workload.Acquire, Samya.Types.Granted -> (
            outstanding.(client) <- outstanding.(client) + request.amount;
            match spec.grant_driven_release_ms with
            | Some lifetime_ms ->
                Des.Engine.schedule engine ~delay_ms:lifetime_ms (fun () ->
                    (* A grant-driven release: these tokens are held by
                       construction. *)
                    issue ~synthetic:true
                      { request with kind = Trace.Workload.Release; time_ms = 0.0 })
            | None -> ())
        | Trace.Workload.Release, Samya.Types.Granted ->
            (* Settled on grant, not on issue: a shed release (never
               replied) must not leak the client's holdings. *)
            outstanding.(client) <- outstanding.(client) - request.amount
        | _ -> ());
        let now = Des.Engine.now engine in
        (* Replies to crashed or timed-out clients are discarded (the
           timed-out case counts in [no_reply]). *)
        if now -. t0 < cutoffs.(client) && now -. sent_at <= spec.client_timeout_ms
        then begin
          (match response with
          | Samya.Types.Granted | Samya.Types.Read_result _ ->
              incr committed;
              Stats.Sample_set.add latencies (now -. sent_at);
              Stats.Throughput.record throughput ~time_ms:(now -. t0)
          | Samya.Types.Rejected -> incr rejected
          | Samya.Types.Unavailable -> incr unavailable);
          match spec.slo with
          | None -> ()
          | Some slo -> (
              match response with
              | Samya.Types.Granted | Samya.Types.Read_result _ ->
                  Obs.Slo.commit slo ~now_ms:(now -. t0)
                    ~latency_ms:(now -. sent_at)
              | Samya.Types.Rejected | Samya.Types.Unavailable ->
                  Obs.Slo.abort slo ~now_ms:(now -. t0))
        end
      in
      let region = spec.client_regions.(client) in
      let submit ~reply =
        match request.kind with
        | Trace.Workload.Acquire ->
            t_system.Systems.acquire ~region ~amount:request.amount ~reply
        | Trace.Workload.Release ->
            t_system.Systems.release ~region ~amount:request.amount ~reply
        | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
      in
      match instrument with
      | None -> submit ~reply
      | Some (sink, lat_h, c_commit, c_rej, c_unavail) ->
          let span =
            Obs.Span.start sink.Obs.Sink.spans ~cat:"request"
              ~tid:(client_tid client) (span_name request.kind)
          in
          (* Root of the causal trace: everything the system does on this
             request's behalf (hops, queueing, protocol phases) inherits
             the context through the engine's ambient propagation. *)
          let trace = Des.Engine.fresh_id engine in
          Obs.Causal.record sink.Obs.Sink.causal
            (Obs.Causal.Submitted
               { trace; client; kind = span_name request.kind; ts = sent_at });
          let reply response =
            let now = Des.Engine.now engine in
            let outcome =
              match response with
              | Samya.Types.Granted | Samya.Types.Read_result _ ->
                  Obs.Metrics.incr c_commit;
                  Obs.Metrics.observe lat_h (now -. sent_at);
                  "granted"
              | Samya.Types.Rejected ->
                  Obs.Metrics.incr c_rej;
                  "rejected"
              | Samya.Types.Unavailable ->
                  Obs.Metrics.incr c_unavail;
                  "unavailable"
            in
            Obs.Span.finish sink.Obs.Sink.spans
              ~args:[ ("outcome", outcome) ]
              span;
            Obs.Causal.record sink.Obs.Sink.causal
              (Obs.Causal.Completed { trace; outcome; ts = now });
            reply response
          in
          Des.Engine.with_context engine
            (Des.Trace_context.root ~trace)
            (fun () -> submit ~reply)
    end
  in
  let rec dispatch i =
    if i < n then begin
      let request = spec.requests.(i) in
      if request.Trace.Workload.time_ms > spec.duration_ms then ()
      else
        Des.Engine.schedule_at engine ~time_ms:(t0 +. request.Trace.Workload.time_ms)
          (fun () ->
            issue ~synthetic:false request;
            (* Schedule the next arrival lazily so the event heap stays
               small even for million-request streams. *)
            dispatch (i + 1))
    end
  in
  dispatch 0;
  Des.Engine.run engine ~until_ms:(t0 +. spec.duration_ms +. spec.drain_ms);
  {
    committed = !committed;
    rejected = !rejected;
    unavailable = !unavailable;
    no_reply = !submitted - !replied;
    latencies;
    throughput;
    duration_ms = spec.duration_ms;
  }

let average_tps result =
  float_of_int result.committed /. (result.duration_ms /. 1000.0)

let percentile result p = Stats.Sample_set.percentile result.latencies p

let run_closed ~(t_system : Systems.facade) ~client_regions ~requests ~duration_ms
    ~workers_per_client ~window_ms =
  let engine = t_system.Systems.engine in
  let t0 = Des.Engine.now engine in
  let latencies = Stats.Sample_set.create () in
  let throughput = Stats.Throughput.create ~window_ms in
  let committed = ref 0 and rejected = ref 0 and unavailable = ref 0 in
  (* Partition the stream per client; workers consume their client's
     requests back to back (arrival times are ignored: the loop is closed). *)
  let per_client =
    Array.map (fun _ -> Queue.create ()) client_regions
  in
  Array.iter
    (fun (r : Trace.Workload.request) -> Queue.push r per_client.(r.site))
    requests;
  let no_reply = ref 0 in
  let outstanding = Array.make (Array.length client_regions) 0 in
  let rec worker client =
    if Des.Engine.now engine -. t0 < duration_ms then begin
      match Queue.take_opt per_client.(client) with
      | None -> ()
      | Some request ->
          if request.kind = Trace.Workload.Release && outstanding.(client) < request.amount
          then worker client (* nothing to give back yet; skip *)
          else begin
            let sent_at = Des.Engine.now engine in
            (* A dropped request (a shed transaction never replies) must not
               kill the worker: a watchdog moves it on after a timeout. *)
            let settled = ref false in
            let watchdog =
              Des.Engine.timer engine ~delay_ms:5_000.0 (fun () ->
                  if not !settled then begin
                    settled := true;
                    incr no_reply;
                    worker client
                  end)
            in
            let reply response =
              if not !settled then begin
                settled := true;
                Des.Engine.cancel watchdog;
                let now = Des.Engine.now engine in
                (match (request.kind, response) with
                | Trace.Workload.Acquire, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) + request.amount
                | Trace.Workload.Release, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) - request.amount
                | _ -> ());
                (match response with
                | Samya.Types.Granted | Samya.Types.Read_result _ ->
                    if now -. t0 <= duration_ms then begin
                      incr committed;
                      Stats.Sample_set.add latencies (now -. sent_at);
                      Stats.Throughput.record throughput ~time_ms:(now -. t0)
                    end
                | Samya.Types.Rejected -> incr rejected
                | Samya.Types.Unavailable -> incr unavailable);
                worker client
              end
            in
            let region = client_regions.(client) in
            match request.kind with
            | Trace.Workload.Acquire ->
                t_system.Systems.acquire ~region ~amount:request.amount ~reply
            | Trace.Workload.Release ->
                t_system.Systems.release ~region ~amount:request.amount ~reply
            | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
          end
    end
  in
  Array.iteri
    (fun client _ ->
      for _ = 1 to workers_per_client do
        worker client
      done)
    client_regions;
  Des.Engine.run engine ~until_ms:(t0 +. duration_ms +. 10_000.0);
  {
    committed = !committed;
    rejected = !rejected;
    unavailable = !unavailable;
    no_reply = !no_reply;
    latencies;
    throughput;
    duration_ms;
  }
