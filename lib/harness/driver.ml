type event = { at_ms : float; action : unit -> unit }

(* Client retry policy: how many attempts a request gets, and how the
   client paces them. Timed-out acquires/reads and shed requests of any
   kind re-enter the stream as causally-linked attempts on the same trace
   root; timed-out releases never retry (the original may have been
   applied late, and a doubled release would mint tokens). *)
type retry = {
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  base_backoff_ms : float;  (** delay before attempt 2 (0 = immediate) *)
  max_backoff_ms : float;  (** cap on the doubled backoff *)
  jitter : float;
      (** fraction in [0, 1): each delay is scaled by
          [1 - jitter * u], u uniform per draw *)
  jitter_seed : int64;
      (** root of the per-client jitter streams
          ([Des.Rng.stream jitter_seed client]) — each client draws from
          its own stream on its own lane, so schedules are byte-identical
          at any [--engine-jobs] *)
}

type spec = {
  client_regions : Geonet.Region.t array;
  requests : Trace.Workload.request array;
  duration_ms : float;
  drain_ms : float;
  window_ms : float;
  events : event list;
  client_crash : (float * int) list;
  client_timeout_ms : float;
  grant_driven_release_ms : float option;
      (* Some lifetime: ignore the stream's releases; each granted acquire
         schedules its own release that much later (real VM lifetimes) *)
  obs : Obs.Sink.t option;
      (* when set, the driver records per-request spans (client lanes,
         tid 1000+) and driver.* metrics into the sink *)
  slo : Obs.Slo.t option;
      (* when set, every counted reply feeds the online SLO monitor:
         commits with their latency, rejections/unavailables as aborts *)
  flight : Obs.Flight_recorder.t option;
      (* when set (with [slo]), SLO window breaches are recorded into
         lane -1 of the recorder so the watchdog can trigger on them *)
  track_entities : bool;
      (* when set, counted replies of entity-named requests additionally
         accumulate per-entity outcome counts and latency sums (the
         gateway-fleet per-key attribution) *)
  retry : retry option;
      (* when set, timed-out and shed requests re-enter as linked retry
         attempts (default None: submit once, wait forever — the
         historical behaviour) *)
  deadline_budget_ms : float;
      (* per-workload deadline budget: entity-named requests are stamped
         with the absolute deadline [first_sent + budget], which sites
         propagate and enforce (default infinity: no deadline) *)
  phases : float array;
      (* interior phase boundaries (ms, sorted ascending): requests bucket
         into [result.by_phase] by first-send time — n boundaries make
         n+1 phases ([||] = no per-phase accounting, the default) *)
}

let default_spec ~client_regions ~requests ~duration_ms =
  {
    client_regions;
    requests;
    duration_ms;
    drain_ms = 30_000.0;
    window_ms = 10_000.0;
    events = [];
    client_crash = [];
    client_timeout_ms = infinity;
    grant_driven_release_ms = None;
    obs = None;
    slo = None;
    flight = None;
    track_entities = false;
    retry = None;
    deadline_budget_ms = infinity;
    phases = [||];
  }

type entity_stats = {
  e_committed : int;
  e_rejected : int;
  e_unavailable : int;
  e_shed : int;
  e_latency_sum_ms : float;
  e_latency_max_ms : float;
}

type phase_stats = {
  p_committed : int;
  p_aborted : int;  (** rejected + unavailable + shed + timed out *)
  p_latencies : Stats.Sample_set.t;  (** committed requests only, ms *)
}

type result = {
  committed : int;
  rejected : int;
  unavailable : int;
  shed : int;
  timed_out : int;
  retries : int;
  no_reply : int;
  latencies : Stats.Sample_set.t;
  throughput : Stats.Throughput.t;
  duration_ms : float;
  by_entity : (string * entity_stats) list;
  by_phase : phase_stats array;
}

(* Client lanes live above the site lanes in the trace (tid 1000+). *)
let client_tid client = 1000 + client

let span_name = function
  | Trace.Workload.Acquire -> "req.acquire"
  | Trace.Workload.Release -> "req.release"
  | Trace.Workload.Read -> "req.read"

(* Per-slot accumulators. On the legacy single-engine path there is one
   slot and accumulation is exactly the historical global order (keeping
   float sums bit-identical to earlier releases). On a sharded system a
   client's replies execute on its region's lane, concurrently with other
   lanes, so each client accumulates into its own slot and the slots are
   merged in client order after the run — an order that is a function of
   the simulation alone, never of the domain count. *)
type ent_acc = {
  mutable ec : int;
  mutable er : int;
  mutable eu : int;
  mutable es : int;
  mutable elsum : float;
  mutable elmax : float;
}

(* SLO feed tags: 0 = commit, the rest are abort classes. *)
let cls_name = function
  | 1 -> "rejected"
  | 2 -> "unavailable"
  | 3 -> "shed"
  | _ -> "timeout"

type acc = {
  slots : int;
  lat : Stats.Sample_set.t array;
  tp : Stats.Throughput.t array;
  committed : int array;
  rejected : int array;
  unavailable : int array;
  shed : int array;
  timedout : int array;
  retries : int array;
  submitted : int array;
  replied : int array;
  ents : (string, ent_acc) Hashtbl.t array;
  (* deferred SLO events on a sharded system, newest first per slot:
     (reply time rel. t0, commit latency, outcome tag) *)
  slo_buf : (float * float * int) list ref array;
  (* per-phase accounting (slots x phases); empty unless [spec.phases] *)
  n_phases : int;
  ph_lat : Stats.Sample_set.t array array;
  ph_committed : int array array;
  ph_aborted : int array array;
}

let acc_create ?(n_phases = 0) ~lanes ~n_clients ~window_ms () =
  let slots = if lanes > 1 then n_clients else 1 in
  {
    slots;
    lat = Array.init slots (fun _ -> Stats.Sample_set.create ());
    tp = Array.init slots (fun _ -> Stats.Throughput.create ~window_ms);
    committed = Array.make slots 0;
    rejected = Array.make slots 0;
    unavailable = Array.make slots 0;
    shed = Array.make slots 0;
    timedout = Array.make slots 0;
    retries = Array.make slots 0;
    submitted = Array.make slots 0;
    replied = Array.make slots 0;
    ents = Array.init slots (fun _ -> Hashtbl.create 16);
    slo_buf = Array.init slots (fun _ -> ref []);
    n_phases;
    ph_lat =
      Array.init slots (fun _ ->
          Array.init n_phases (fun _ -> Stats.Sample_set.create ()));
    ph_committed = Array.init slots (fun _ -> Array.make n_phases 0);
    ph_aborted = Array.init slots (fun _ -> Array.make n_phases 0);
  }

let ent_for tbl entity =
  match Hashtbl.find_opt tbl entity with
  | Some e -> e
  | None ->
      let e = { ec = 0; er = 0; eu = 0; es = 0; elsum = 0.0; elmax = 0.0 } in
      Hashtbl.add tbl entity e;
      e

let acc_slot acc client = if acc.slots = 1 then 0 else client

let acc_result acc ~duration_ms : result =
  let sum = Array.fold_left ( + ) 0 in
  let latencies =
    if acc.slots = 1 then acc.lat.(0)
    else begin
      let merged = Stats.Sample_set.create () in
      Array.iter (fun s -> Stats.Sample_set.merge_into s ~into:merged) acc.lat;
      merged
    end
  in
  let throughput =
    if acc.slots = 1 then acc.tp.(0)
    else begin
      let merged = Stats.Throughput.create ~window_ms:(Stats.Throughput.window_ms acc.tp.(0)) in
      Array.iter (fun t -> Stats.Throughput.merge_into t ~into:merged) acc.tp;
      merged
    end
  in
  (* Per-entity merge: slots in slot order, each slot's entries in entity
     order — a deterministic order whatever the hash-table iteration
     happens to be, so sharded runs stay reproducible. *)
  let by_entity =
    let merged : (string, ent_acc) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun tbl ->
        Hashtbl.fold (fun entity e l -> (entity, e) :: l) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (entity, (e : ent_acc)) ->
               let m = ent_for merged entity in
               m.ec <- m.ec + e.ec;
               m.er <- m.er + e.er;
               m.eu <- m.eu + e.eu;
               m.es <- m.es + e.es;
               m.elsum <- m.elsum +. e.elsum;
               if e.elmax > m.elmax then m.elmax <- e.elmax))
      acc.ents;
    Hashtbl.fold (fun entity m l -> (entity, m) :: l) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (entity, (m : ent_acc)) ->
           ( entity,
             {
               e_committed = m.ec;
               e_rejected = m.er;
               e_unavailable = m.eu;
               e_shed = m.es;
               e_latency_sum_ms = m.elsum;
               e_latency_max_ms = m.elmax;
             } ))
  in
  (* Phase merge in slot order — deterministic at any domain count. *)
  let by_phase =
    Array.init acc.n_phases (fun p ->
        let lat = Stats.Sample_set.create () in
        let committed = ref 0 and aborted = ref 0 in
        for s = 0 to acc.slots - 1 do
          Stats.Sample_set.merge_into acc.ph_lat.(s).(p) ~into:lat;
          committed := !committed + acc.ph_committed.(s).(p);
          aborted := !aborted + acc.ph_aborted.(s).(p)
        done;
        { p_committed = !committed; p_aborted = !aborted; p_latencies = lat })
  in
  {
    committed = sum acc.committed;
    rejected = sum acc.rejected;
    unavailable = sum acc.unavailable;
    shed = sum acc.shed;
    timed_out = sum acc.timedout;
    retries = sum acc.retries;
    no_reply = sum acc.submitted - sum acc.replied;
    latencies;
    throughput;
    duration_ms;
    by_entity;
    by_phase;
  }

(* The driver-side instruments, resolved once per run. *)
type instr = {
  i_sink : Obs.Sink.t;
  i_lat : Obs.Metrics.histogram;
  i_commit : Obs.Metrics.counter;
  i_rej : Obs.Metrics.counter;
  i_unavail : Obs.Metrics.counter;
  i_shed : Obs.Metrics.counter;
  i_timeout : Obs.Metrics.counter;
  i_retry : Obs.Metrics.counter;
}

(* NaN-safe spec validation (a NaN budget or backoff fails every
   comparison, so each knob is written as "reject unless provably
   sane"). *)
let validate_spec spec =
  if not (spec.deadline_budget_ms > 0.0) then
    invalid_arg
      (Printf.sprintf "Driver.run: deadline_budget_ms must be positive (got %g)"
         spec.deadline_budget_ms);
  Array.iteri
    (fun i b ->
      if not (b > 0.0 && b < infinity) then
        invalid_arg
          (Printf.sprintf
             "Driver.run: phase boundaries must be positive and finite (got %g)"
             b);
      if i > 0 && not (b > spec.phases.(i - 1)) then
        invalid_arg "Driver.run: phase boundaries must be strictly ascending")
    spec.phases;
  match spec.retry with
  | None -> ()
  | Some r ->
      if r.max_attempts < 1 then
        invalid_arg
          (Printf.sprintf "Driver.run: retry.max_attempts must be >= 1 (got %d)"
             r.max_attempts);
      if not (r.base_backoff_ms >= 0.0) then
        invalid_arg
          (Printf.sprintf
             "Driver.run: retry.base_backoff_ms must be non-negative (got %g)"
             r.base_backoff_ms);
      if not (r.max_backoff_ms >= r.base_backoff_ms) then
        invalid_arg
          (Printf.sprintf
             "Driver.run: retry.max_backoff_ms must be >= base_backoff_ms (got %g < %g)"
             r.max_backoff_ms r.base_backoff_ms);
      if not (r.jitter >= 0.0 && r.jitter < 1.0) then
        invalid_arg
          (Printf.sprintf "Driver.run: retry.jitter must be in [0, 1) (got %g)"
             r.jitter)

let run ~(t_system : Systems.facade) spec =
  validate_spec spec;
  let n_clients = Array.length spec.client_regions in
  let engines = Array.map t_system.Systems.sched_region spec.client_regions in
  let lanes = t_system.Systems.engine_lanes in
  let t0 = t_system.Systems.now () in
  let n_phases =
    if Array.length spec.phases = 0 then 0 else Array.length spec.phases + 1
  in
  let acc = acc_create ~n_phases ~lanes ~n_clients ~window_ms:spec.window_ms () in
  (* Phase of a first-send instant (relative to t0): the number of
     boundaries at or before it. Linear scan — phase counts are tiny. *)
  let phase_of rel =
    let p = ref 0 in
    Array.iter (fun b -> if rel >= b then incr p) spec.phases;
    !p
  in
  let cutoffs = Array.make n_clients infinity in
  List.iter (fun (at, client) -> cutoffs.(client) <- Float.min cutoffs.(client) at)
    spec.client_crash;
  (* Observability: resolve the driver's instruments once, name the
     client lanes. The un-observed path keeps a single None check. *)
  let instrument =
    match spec.obs with
    | None -> None
    | Some sink ->
        let m = sink.Obs.Sink.metrics in
        Array.iteri
          (fun i region ->
            Obs.Span.thread_name sink.Obs.Sink.spans ~tid:(client_tid i)
              (Printf.sprintf "client %d (%s)" i (Geonet.Region.name region)))
          spec.client_regions;
        Some
          {
            i_sink = sink;
            i_lat = Obs.Metrics.histogram m "driver.commit_latency_ms";
            i_commit = Obs.Metrics.counter m "driver.committed";
            i_rej = Obs.Metrics.counter m "driver.rejected";
            i_unavail = Obs.Metrics.counter m "driver.unavailable";
            i_shed = Obs.Metrics.counter m "driver.shed";
            i_timeout = Obs.Metrics.counter m "driver.timed_out";
            i_retry = Obs.Metrics.counter m "driver.retries";
          }
  in
  (* SLO window breaches feed the flight recorder's driver lane (-1).
     The stamp is the window's nominal end, in absolute virtual time —
     identical whether breaches surface online (single-slot feed) or
     from the deterministic post-run replay of a sharded run. *)
  (match (spec.slo, spec.flight) with
  | Some slo, Some recorder ->
      Obs.Slo.on_violation slo
        (fun ~name ~window_start_ms ~window_end_ms ~value ~target ->
          let render v =
            if target < 1.0 then Printf.sprintf "%.4f" v
            else Printf.sprintf "%.1f ms" v
          in
          Obs.Flight_recorder.record recorder ~lane:(-1)
            ~ts:(t0 +. window_end_ms) ~kind:Obs.Flight_recorder.Slo_breach
            ~entity:name
            (Printf.sprintf "window [%.0f s, %.0f s): %s > target %s"
               (window_start_ms /. 1000.0) (window_end_ms /. 1000.0)
               (render value) (render target)))
  | _ -> ());
  (* Failure schedule: crash/partition/heal actions mutate state every
     lane reads, so on a sharded system they run at window barriers. *)
  List.iter
    (fun { at_ms; action } ->
      t_system.Systems.schedule_global ~time_ms:(t0 +. at_ms) action)
    spec.events;
  (* Open-loop replay with chained dispatchers to keep the heap small.
     Clients track their outstanding tokens: a release is only issued
     against tokens actually granted (§3.2 — "an individual client never
     returns more tokens than what it has acquired"), so rejected acquires
     do not spawn phantom releases that would quietly refill the pool. *)
  let n = Array.length spec.requests in
  let outstanding = Array.make n_clients 0 in
  let max_attempts = match spec.retry with None -> 1 | Some r -> r.max_attempts in
  (* Per-client jitter streams, created only when a policy actually draws
     from them: a jitterless run (including every legacy spec) consumes no
     randomness at all. Each client draws from its own stream on its own
     lane, so the schedule is a function of the simulation alone, never of
     the domain count. *)
  let retry_rngs =
    match spec.retry with
    | Some r when r.jitter > 0.0 ->
        Array.init n_clients (fun c -> Des.Rng.stream r.jitter_seed c)
    | _ -> [||]
  in
  let backoff_ms client ~completed =
    match spec.retry with
    | None -> 0.0
    | Some r ->
        let d =
          Float.min r.max_backoff_ms
            (r.base_backoff_ms *. (2.0 ** float_of_int (completed - 1)))
        in
        if r.jitter > 0.0 then
          d *. (1.0 -. r.jitter *. Des.Rng.float retry_rngs.(client) 1.0)
        else d
  in
  let rec issue ~synthetic (request : Trace.Workload.request) =
    let client = request.site in
    let engine = engines.(client) in
    let s = acc_slot acc client in
    let skip_release =
      (not synthetic)
      && request.kind = Trace.Workload.Release
      && (outstanding.(client) < request.amount || spec.grant_driven_release_ms <> None)
    in
    if
      request.time_ms < cutoffs.(client)
      && request.time_ms <= spec.duration_ms
      && not skip_release
    then begin
      let first_sent = Des.Engine.now engine in
      let deadline =
        if spec.deadline_budget_ms = infinity then infinity
        else first_sent +. spec.deadline_budget_ms
      in
      let region = spec.client_regions.(client) in
      let submit ~reply =
        if request.entity <> "" then
          (* Multi-entity path: the request names its own key; the facade's
             generic verb carries it (and the absolute deadline) to the
             cluster untranslated. *)
          let r =
            match request.kind with
            | Trace.Workload.Acquire ->
                Samya.Types.Acquire
                  {
                    entity = request.entity;
                    amount = request.amount;
                    deadline_ms = deadline;
                  }
            | Trace.Workload.Release ->
                Samya.Types.Release
                  {
                    entity = request.entity;
                    amount = request.amount;
                    deadline_ms = deadline;
                  }
            | Trace.Workload.Read ->
                Samya.Types.Read { entity = request.entity; deadline_ms = deadline }
          in
          t_system.Systems.submit ~region r ~reply
        else
          match request.kind with
          | Trace.Workload.Acquire ->
              t_system.Systems.acquire ~region ~amount:request.amount ~reply
          | Trace.Workload.Release ->
              t_system.Systems.release ~region ~amount:request.amount ~reply
          | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
      in
      (* One span and one causal root per request: every retry attempt runs
         under the same trace, so [explain] shows them as extra service
         legs on one root, closed by a single terminal Completed. *)
      let inst =
        match instrument with
        | None -> None
        | Some i ->
            let span =
              Obs.Span.start i.i_sink.Obs.Sink.spans ~cat:"request"
                ~tid:(client_tid client) (span_name request.kind)
            in
            let trace = Des.Engine.fresh_id engine in
            Obs.Causal.record i.i_sink.Obs.Sink.causal
              (Obs.Causal.Submitted
                 {
                   trace;
                   client;
                   kind = span_name request.kind;
                   entity = request.entity;
                   ts = first_sent;
                 });
            Some (i, span, trace)
      in
      let finish_instr ~outcome ~now =
        match inst with
        | None -> ()
        | Some (i, span, trace) ->
            Obs.Span.finish i.i_sink.Obs.Sink.spans
              ~args:[ ("outcome", outcome) ]
              span;
            Obs.Causal.record i.i_sink.Obs.Sink.causal
              (Obs.Causal.Completed { trace; outcome; ts = now })
      in
      let slo_feed ~now ~lat ~tag =
        match spec.slo with
        | None -> ()
        | Some slo ->
            if acc.slots = 1 then
              (* Legacy backend: reply order is globally sequential, so
                 the shared monitor is fed online (the historical path,
                 byte-identical to earlier releases). *)
              (if tag = 0 then Obs.Slo.commit slo ~now_ms:(now -. t0) ~latency_ms:lat
               else Obs.Slo.abort ~cls:(cls_name tag) slo ~now_ms:(now -. t0))
            else
              (* Sharded backend: lanes reply concurrently, so events are
                 buffered per slot and replayed in merged time order
                 after the run — deterministic at any domain count. *)
              acc.slo_buf.(s) := (now -. t0, lat, tag) :: !(acc.slo_buf.(s))
      in
      let rec attempt n_attempt =
        acc.submitted.(s) <- acc.submitted.(s) + 1;
        if n_attempt > 1 then begin
          acc.retries.(s) <- acc.retries.(s) + 1;
          match inst with
          | Some (i, _, _) -> Obs.Metrics.incr i.i_retry
          | None -> ()
        end;
        let sent_at = Des.Engine.now engine in
        let settled = ref false in
        let retry_after () =
          Des.Engine.schedule engine
            ~delay_ms:(backoff_ms client ~completed:n_attempt) (fun () ->
              (* The client may have crashed while backing off. *)
              if Des.Engine.now engine -. t0 < cutoffs.(client) then
                attempt (n_attempt + 1))
        in
        let commit_terminal ~now =
          let lat = now -. first_sent in
          acc.committed.(s) <- acc.committed.(s) + 1;
          Stats.Sample_set.add acc.lat.(s) lat;
          Stats.Throughput.record acc.tp.(s) ~time_ms:(now -. t0);
          if acc.n_phases > 0 then begin
            (* Retry attempts share [first_sent], so a whole request
               buckets into the phase that originated it. *)
            let p = phase_of (first_sent -. t0) in
            acc.ph_committed.(s).(p) <- acc.ph_committed.(s).(p) + 1;
            Stats.Sample_set.add acc.ph_lat.(s).(p) lat
          end;
          if spec.track_entities && request.entity <> "" then begin
            let e = ent_for acc.ents.(s) request.entity in
            e.ec <- e.ec + 1;
            e.elsum <- e.elsum +. lat;
            if lat > e.elmax then e.elmax <- lat
          end;
          slo_feed ~now ~lat ~tag:0;
          (match inst with
          | Some (i, _, _) ->
              Obs.Metrics.incr i.i_commit;
              Obs.Metrics.observe i.i_lat lat
          | None -> ());
          finish_instr ~outcome:"granted" ~now
        in
        let abort_terminal ~now ~tag =
          (match tag with
          | 1 -> acc.rejected.(s) <- acc.rejected.(s) + 1
          | 2 -> acc.unavailable.(s) <- acc.unavailable.(s) + 1
          | 3 -> acc.shed.(s) <- acc.shed.(s) + 1
          | _ -> acc.timedout.(s) <- acc.timedout.(s) + 1);
          (if acc.n_phases > 0 then
             let p = phase_of (first_sent -. t0) in
             acc.ph_aborted.(s).(p) <- acc.ph_aborted.(s).(p) + 1);
          if spec.track_entities && request.entity <> "" then begin
            let e = ent_for acc.ents.(s) request.entity in
            match tag with
            | 1 -> e.er <- e.er + 1
            | 2 -> e.eu <- e.eu + 1
            | 3 -> e.es <- e.es + 1
            | _ -> ()
          end;
          slo_feed ~now ~lat:0.0 ~tag;
          (match inst with
          | Some (i, _, _) ->
              Obs.Metrics.incr
                (match tag with
                | 1 -> i.i_rej
                | 2 -> i.i_unavail
                | 3 -> i.i_shed
                | _ -> i.i_timeout)
          | None -> ());
          finish_instr ~outcome:(cls_name tag) ~now
        in
        (* With a retry policy and a finite client timeout, a watchdog
           abandons the attempt at the timeout instead of waiting for a
           reply that may never come — which is exactly what breeds a
           retry storm: the server may still be working on the original.
           Timed-out releases never retry (at-most-once: the original may
           have been applied late, and a doubled release mints tokens). *)
        let watchdog =
          match spec.retry with
          | Some _ when spec.client_timeout_ms < infinity ->
              Some
                (Des.Engine.timer ~label:"driver.retry.timeout" engine
                   ~delay_ms:spec.client_timeout_ms (fun () ->
                     if not !settled then begin
                       settled := true;
                       let now = Des.Engine.now engine in
                       if now -. t0 >= cutoffs.(client) then ()
                       else if
                         n_attempt < max_attempts
                         && request.kind <> Trace.Workload.Release
                       then retry_after ()
                       else abort_terminal ~now ~tag:4
                     end))
          | _ -> None
        in
        let reply response =
          acc.replied.(s) <- acc.replied.(s) + 1;
          (* Token bookkeeping runs on every reply, even abandoned ones: a
             grant that arrives after the client gave up still moved real
             tokens, and grant-driven releases must return them. *)
          (match (request.kind, response) with
          | Trace.Workload.Acquire, Samya.Types.Granted -> (
              outstanding.(client) <- outstanding.(client) + request.amount;
              match spec.grant_driven_release_ms with
              | Some lifetime_ms ->
                  Des.Engine.schedule engine ~delay_ms:lifetime_ms (fun () ->
                      (* A grant-driven release: these tokens are held by
                         construction. *)
                      issue ~synthetic:true
                        { request with kind = Trace.Workload.Release; time_ms = 0.0 })
              | None -> ())
          | Trace.Workload.Release, Samya.Types.Granted ->
              (* Settled on grant, not on issue: a shed release (never
                 replied) must not leak the client's holdings. *)
              outstanding.(client) <- outstanding.(client) - request.amount
          | _ -> ());
          if not !settled then begin
            settled := true;
            (match watchdog with Some w -> Des.Engine.cancel w | None -> ());
            let now = Des.Engine.now engine in
            if now -. t0 >= cutoffs.(client) then
              (* Crashed client: the reply is discarded for accounting, but
                 the observability story still closes the span/trace (the
                 system did do the work). *)
              let outcome =
                match response with
                | Samya.Types.Granted | Samya.Types.Read_result _ ->
                    (match inst with
                    | Some (i, _, _) ->
                        Obs.Metrics.incr i.i_commit;
                        Obs.Metrics.observe i.i_lat (now -. first_sent)
                    | None -> ());
                    "granted"
                | Samya.Types.Rejected ->
                    (match inst with
                    | Some (i, _, _) -> Obs.Metrics.incr i.i_rej
                    | None -> ());
                    "rejected"
                | Samya.Types.Unavailable ->
                    (match inst with
                    | Some (i, _, _) -> Obs.Metrics.incr i.i_unavail
                    | None -> ());
                    "unavailable"
                | Samya.Types.Rejected_deadline ->
                    (match inst with
                    | Some (i, _, _) -> Obs.Metrics.incr i.i_shed
                    | None -> ());
                    "shed"
              in
              finish_instr ~outcome ~now
            else if now -. sent_at > spec.client_timeout_ms then
              (* Late reply with no watchdog armed (no retry policy): the
                 client had already given up — attribute the request as a
                 timeout instead of letting it silently vanish from every
                 outcome bucket. *)
              abort_terminal ~now ~tag:4
            else
              match response with
              | Samya.Types.Granted | Samya.Types.Read_result _ ->
                  commit_terminal ~now
              | Samya.Types.Rejected -> abort_terminal ~now ~tag:1
              | Samya.Types.Unavailable -> abort_terminal ~now ~tag:2
              | Samya.Types.Rejected_deadline ->
                  if n_attempt < max_attempts then retry_after ()
                  else abort_terminal ~now ~tag:3
          end
        in
        match inst with
        | None -> submit ~reply
        | Some (_, _, trace) ->
            (* Root of the causal trace: everything the system does on this
               request's behalf (hops, queueing, protocol phases) inherits
               the context through the engine's ambient propagation. *)
            Des.Engine.with_context engine
              (Des.Trace_context.root ~trace)
              (fun () -> submit ~reply)
      in
      attempt 1
    end
  in
  if lanes <= 1 then begin
    (* Legacy: one global chain, exactly the historical scheduling shape
       (byte-identical event order to earlier releases). *)
    let engine = t_system.Systems.engine in
    let rec dispatch i =
      if i < n then begin
        let request = spec.requests.(i) in
        if request.Trace.Workload.time_ms > spec.duration_ms then ()
        else
          Des.Engine.schedule_at engine ~time_ms:(t0 +. request.Trace.Workload.time_ms)
            (fun () ->
              issue ~synthetic:false request;
              (* Schedule the next arrival lazily so the event heap stays
                 small even for million-request streams. *)
              dispatch (i + 1))
      end
    in
    dispatch 0
  end
  else begin
    (* Sharded: one chain per client on the client's own lane, so a lane
       only ever schedules onto itself and the global chain never forces
       a cross-lane dependency between consecutive arrivals. *)
    let per_client = Array.make n_clients [] in
    for i = n - 1 downto 0 do
      let client = spec.requests.(i).Trace.Workload.site in
      per_client.(client) <- i :: per_client.(client)
    done;
    Array.iteri
      (fun client indices ->
        let engine = engines.(client) in
        let rec dispatch = function
          | [] -> ()
          | i :: rest ->
              let request = spec.requests.(i) in
              if request.Trace.Workload.time_ms > spec.duration_ms then ()
              else
                Des.Engine.schedule_at engine
                  ~time_ms:(t0 +. request.Trace.Workload.time_ms)
                  (fun () ->
                    issue ~synthetic:false request;
                    dispatch rest)
        in
        dispatch indices)
      per_client
  end;
  t_system.Systems.run_until (t0 +. spec.duration_ms +. spec.drain_ms);
  (match spec.slo with
  | Some slo when acc.slots > 1 ->
      (* Replay the buffered SLO events in (time, slot, arrival) order —
         a pure function of the simulation, never of the domain count. *)
      let events = ref [] in
      Array.iteri
        (fun s buf ->
          List.iteri
            (fun i (t, lat, tag) -> events := (t, s, i, lat, tag) :: !events)
            (List.rev !buf))
        acc.slo_buf;
      let arr = Array.of_list !events in
      Array.sort
        (fun (ta, sa, ia, _, _) (tb, sb, ib, _, _) ->
          let c = Float.compare ta tb in
          if c <> 0 then c
          else
            let c = Int.compare sa sb in
            if c <> 0 then c else Int.compare ia ib)
        arr;
      Array.iter
        (fun (t, _, _, lat, tag) ->
          if tag = 0 then Obs.Slo.commit slo ~now_ms:t ~latency_ms:lat
          else Obs.Slo.abort ~cls:(cls_name tag) slo ~now_ms:t)
        arr
  | _ -> ());
  (* Close the final partial SLO window now, so its breaches reach the
     flight recorder before anyone dumps it; the eventual [report] call
     then finds an empty window and counts nothing twice. *)
  (match spec.slo with Some slo -> Obs.Slo.flush slo | None -> ());
  acc_result acc ~duration_ms:spec.duration_ms

let average_tps (result : result) =
  float_of_int result.committed /. (result.duration_ms /. 1000.0)

let percentile (result : result) p = Stats.Sample_set.percentile result.latencies p

let run_closed ~(t_system : Systems.facade) ~client_regions ~requests ~duration_ms
    ~workers_per_client ~window_ms =
  let n_clients = Array.length client_regions in
  let engines = Array.map t_system.Systems.sched_region client_regions in
  let lanes = t_system.Systems.engine_lanes in
  let t0 = t_system.Systems.now () in
  let acc = acc_create ~lanes ~n_clients ~window_ms () in
  (* Partition the stream per client; workers consume their client's
     requests back to back (arrival times are ignored: the loop is closed).
     All of a client's state — its queue, outstanding tokens, worker
     chains — lives on its region's lane. *)
  let per_client = Array.map (fun _ -> Queue.create ()) client_regions in
  Array.iter
    (fun (r : Trace.Workload.request) -> Queue.push r per_client.(r.site))
    requests;
  let no_reply = Array.make acc.slots 0 in
  let outstanding = Array.make n_clients 0 in
  let rec worker client =
    let engine = engines.(client) in
    let s = acc_slot acc client in
    if Des.Engine.now engine -. t0 < duration_ms then begin
      match Queue.take_opt per_client.(client) with
      | None -> ()
      | Some request ->
          if request.kind = Trace.Workload.Release && outstanding.(client) < request.amount
          then worker client (* nothing to give back yet; skip *)
          else begin
            let sent_at = Des.Engine.now engine in
            (* A dropped request (a shed transaction never replies) must not
               kill the worker: a watchdog moves it on after a timeout. *)
            let settled = ref false in
            let watchdog =
              Des.Engine.timer engine ~delay_ms:5_000.0 (fun () ->
                  if not !settled then begin
                    settled := true;
                    no_reply.(s) <- no_reply.(s) + 1;
                    worker client
                  end)
            in
            let reply response =
              if not !settled then begin
                settled := true;
                Des.Engine.cancel watchdog;
                let now = Des.Engine.now engine in
                (match (request.kind, response) with
                | Trace.Workload.Acquire, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) + request.amount
                | Trace.Workload.Release, Samya.Types.Granted ->
                    outstanding.(client) <- outstanding.(client) - request.amount
                | _ -> ());
                (match response with
                | Samya.Types.Granted | Samya.Types.Read_result _ ->
                    if now -. t0 <= duration_ms then begin
                      acc.committed.(s) <- acc.committed.(s) + 1;
                      Stats.Sample_set.add acc.lat.(s) (now -. sent_at);
                      Stats.Throughput.record acc.tp.(s) ~time_ms:(now -. t0)
                    end
                | Samya.Types.Rejected -> acc.rejected.(s) <- acc.rejected.(s) + 1
                | Samya.Types.Rejected_deadline -> acc.shed.(s) <- acc.shed.(s) + 1
                | Samya.Types.Unavailable ->
                    acc.unavailable.(s) <- acc.unavailable.(s) + 1);
                worker client
              end
            in
            let region = client_regions.(client) in
            match request.kind with
            | Trace.Workload.Acquire ->
                t_system.Systems.acquire ~region ~amount:request.amount ~reply
            | Trace.Workload.Release ->
                t_system.Systems.release ~region ~amount:request.amount ~reply
            | Trace.Workload.Read -> t_system.Systems.read ~region ~reply
          end
    end
  in
  Array.iteri
    (fun client _ ->
      for _ = 1 to workers_per_client do
        worker client
      done)
    client_regions;
  t_system.Systems.run_until (t0 +. duration_ms +. 10_000.0);
  let result = acc_result acc ~duration_ms in
  { result with no_reply = Array.fold_left ( + ) 0 no_reply }
