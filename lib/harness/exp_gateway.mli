(** The gateway-fleet experiment — the multi-entity headline.

    One Samya cluster holds the rate-limiter keys of an API-gateway
    fleet: a million keys bulk-registered cold (quick mode: 20k), Zipfian
    open-loop demand at 100k req/s offered (quick: 5k), per-key quotas
    sized by Little's law. The hot head of the popularity curve heats
    into full per-entity machines and redistributes through the
    site-level batched Avantan instances; the cold tail is served from
    the compact core ledgers. Output: fleet KPIs, the throughput figure,
    the per-key attribution table, the rendered [samya-slo/1] report and
    a key-by-key token-conservation audit. *)

type scale = {
  keys : int;
  rate_per_s : float;
  duration_ms : float;
  hold_ms : float;
  batch : int;
  shards : int;
}

val scale : quick:bool -> scale

val key_name : int -> string
(** Key of popularity rank [r] (0 = hottest). *)

type capture = {
  scale : scale;
  quotas : int array;  (** per-rank quota (Little's law) *)
  cluster : Samya.Cluster.t;
  offered : int;  (** requests in the generated stream *)
  sink : Obs.Sink.t option;  (** present when captured with [~observe] *)
  slo : Obs.Slo.t;
  result : Driver.result;  (** includes the per-key [by_entity] stats *)
  hot : int;  (** materialised hot entities, summed over sites *)
  stats : Systems.stats;
  flight : Obs.Flight_recorder.t;  (** the always-on black box *)
  hotkeys : Obs.Heavy_hitters.Windowed.w;
      (** request-path Misra-Gries sketch — the O(k) hot-key telemetry
          that scales where per-key driver attribution cannot *)
  incidents : Obs.Watchdog.incident list;
      (** watchdog verdict over the recorder dump, default rules *)
}

val capture : ?engine_jobs:int -> ?observe:bool -> quick:bool -> unit -> capture
(** Build the fleet, replay the Zipfian stream, return the instrumented
    outcome. [engine_jobs] defaults to the process-wide {!Pool} setting;
    [observe] (default false) additionally subscribes a full
    observability sink — the [explain]/[slo] command path. *)

val audit : capture -> int * (string * string) list
(** Key-by-key token conservation (Equation 1 against each key's quota):
    number of conserving keys, plus up to five violations. *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
(** The registry experiment. *)
