(* Chaos soak: K seeds per Avantan variant, each a full Nemesis run with
   crash-amnesia recovery, audited for token conservation, double-apply
   and decided-prefix violations. Any failing seed prints its violations
   plus the one-command repro line. *)

let n_seeds ~quick = if quick then 6 else 20
let soak_duration_ms ~quick = if quick then 45_000.0 else 120_000.0

let variant_label = function
  | Samya.Config.Majority -> "Samya w/ Av.[(n+1)/2]"
  | Samya.Config.Star -> "Samya w/ Av.[*]"

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let run _ctx ~quick fmt =
  let n_seeds = n_seeds ~quick in
  let duration_ms = soak_duration_ms ~quick in
  Format.fprintf fmt
    "@.== Chaos soak: %d seeds x 2 variants, %.0f s of faults each \
     (crash-amnesia, write-through durability) ==@."
    n_seeds (duration_ms /. 1_000.0);
  let runs =
    List.concat_map
      (fun variant -> List.init n_seeds (fun i -> (variant, i + 1)))
      [ Samya.Config.Majority; Samya.Config.Star ]
  in
  let reports =
    Pool.map
      (fun (variant, seed) -> Chaos.Soak.run ~duration_ms ~variant ~seed ())
      runs
  in
  let by_variant variant =
    List.filter (fun (r : Chaos.Soak.report) -> r.variant = variant) reports
  in
  let rows =
    List.map
      (fun variant ->
        let rs = by_variant variant in
        let passed =
          List.length (List.filter Chaos.Soak.passed rs)
        in
        let faults =
          List.fold_left (fun acc (r : Chaos.Soak.report) -> acc + r.injected) 0 rs
        in
        let granted =
          List.fold_left (fun acc (r : Chaos.Soak.report) -> acc + r.granted) 0 rs
        in
        let recovery =
          List.concat_map
            (fun (r : Chaos.Soak.report) -> List.map snd r.recovery_probes)
            rs
        in
        let syncs =
          List.fold_left
            (fun acc (r : Chaos.Soak.report) -> acc + r.durable_syncs)
            0 rs
        in
        [
          variant_label variant;
          Printf.sprintf "%d/%d" passed (List.length rs);
          string_of_int faults;
          string_of_int granted;
          (let m = mean recovery in
           if Float.is_nan m then "-" else Printf.sprintf "%.0f ms" m);
          string_of_int syncs;
        ])
      [ Samya.Config.Majority; Samya.Config.Star ]
  in
  Report.table fmt ~title:"Chaos soak: survived seeds and recovery latency"
    ~header:
      [ "system"; "seeds OK"; "faults"; "granted"; "mean recovery"; "syncs" ]
    ~rows;
  let failures = List.filter (fun r -> not (Chaos.Soak.passed r)) reports in
  if failures = [] then
    Report.kv fmt
      [
        ( "auditor",
          Printf.sprintf
            "all %d runs conserve tokens, no double-apply, no divergent origin"
            (List.length reports) );
      ]
  else
    List.iter
      (fun (r : Chaos.Soak.report) ->
        Format.fprintf fmt "@.FAILED seed %d (%s):@." r.seed
          (variant_label r.variant);
        List.iter
          (fun v -> Format.fprintf fmt "  %a@." Chaos.Auditor.pp_violation v)
          r.violations;
        Format.fprintf fmt "  repro: %s@." (Chaos.Soak.repro_line r))
      failures
