(** Uniform handle over every system under test, so one driver can run the
    same workload against Samya (both Avantan variants and its ablations),
    Demarcation/Escrow, MultiPaxSys, and the CockroachDB-like baseline. *)

type t = {
  name : string;
  engine : Des.Engine.t;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  crash_region : Geonet.Region.t -> unit;
      (** Crash every server in the region (no-op for systems with no
          replica there). *)
  crash_site : int -> unit;  (** crash one server by its own index *)
  recover_site : int -> unit;
      (** bring a crashed server back (Samya honours
          [Config.amnesia_on_crash]; baselines restore frozen state) *)
  partition : int list list -> unit;  (** groups of server indices *)
  heal : unit -> unit;
  redistributions : unit -> int;  (** 0 for non-Samya systems *)
  invariant : maximum:int -> (unit, string) result;
}

val samya :
  ?seed:int64 ->
  ?name:string ->
  config:Samya.Config.t ->
  regions:Geonet.Region.t array ->
  ?forecaster:Ml.Forecaster.t ->
  ?on_protocol_event:
    (site:int -> entity:Samya.Types.entity -> Samya.Avantan_core.event -> unit) ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  t
(** [on_protocol_event] taps the structured {!Samya.Avantan_core.event}
    feed of every site (elections, accepts, recoveries, decisions, aborts
    with round counts) — protocol observability for experiments without
    touching the workload path. *)

val demarcation :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  t

val multipaxsys :
  ?seed:int64 -> entity:Samya.Types.entity -> maximum:int -> unit -> t
(** Spanner-style placement (three US regions + Asia + Europe); client
    requests reach the leader through the nearest replica gateway, so a
    partition that separates a client's side from the leader makes that
    client's requests fail, as in Fig. 3d. *)

val cockroach :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  t
(** The handle is returned with elections already settled (the engine is
    pre-run until a leader exists). *)
