(** Builders for the four systems under test, all returning the unified
    {!Facade.t} record (re-exported here as {!facade}). Experiments,
    chaos and the trace exporter drive every system through this one
    interface — there is no per-system dispatch downstream of this
    module. *)

type stats = Facade.stats = {
  redistributions : int;
  borrows : int;
  borrow_tokens : int;
  mechanism_switches : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
}

type facade = Facade.t = {
  name : string;
  engine : Des.Engine.t;
      (** single engine of a legacy system; lane 0's of a sharded one *)
  now : unit -> float;  (** virtual (barrier) time *)
  sched_region : Geonet.Region.t -> Des.Engine.t;
      (** engine executing a region's client events *)
  schedule_global : time_ms:float -> (unit -> unit) -> unit;
      (** barrier-aligned slot for fault injection *)
  run_until : float -> unit;  (** advance all lanes to an absolute time *)
  engine_lanes : int;  (** simulation lanes; 1 = legacy single engine *)
  acquire :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  release :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  read : region:Geonet.Region.t -> reply:(Samya.Types.response -> unit) -> unit;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  crash_region : Geonet.Region.t -> unit;
      (** Crash every server in the region (no-op for systems with no
          replica there). *)
  crash_site : int -> unit;  (** crash one server by its own index *)
  recover_site : int -> unit;
      (** bring a crashed server back (Samya honours
          [Config.amnesia_on_crash]; baselines restore frozen state) *)
  partition : int list list -> unit;  (** groups of server indices *)
  heal : unit -> unit;
  stats : unit -> stats;
  subscribe : Obs.Sink.t -> unit;
      (** wire an observability sink through every layer; call at most
          once, before driving load *)
  arm : Obs.Flight_recorder.attachment -> unit;
      (** arm the always-on incident layer (flight recorder + hot-key
          sketch) without forcing sequential windows; no-op on baselines *)
  invariant : maximum:int -> (unit, string) result;
}

val sites_in : Geonet.Region.t array -> Geonet.Region.t -> int list
(** Indices of the sites placed in a region (re-export of
    {!Facade.sites_in}). *)

val samya :
  ?seed:int64 ->
  ?engine_jobs:int ->
  ?name:string ->
  config:Samya.Config.t ->
  regions:Geonet.Region.t array ->
  ?forecaster:Ml.Forecaster.t ->
  ?on_protocol_event:
    (site:int -> entity:Samya.Types.entity -> Samya.Avantan_core.event -> unit) ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  facade
(** A Samya cluster under either Avantan variant (named from
    [config.variant] unless [?name] overrides). [on_protocol_event] taps
    the structured {!Samya.Avantan_core.event} feed of every site; it
    composes with the span observer installed by [subscribe].
    [engine_jobs] selects the simulation backend as in
    {!Samya.Cluster.create}; when omitted it follows the process-wide
    {!Pool.engine_jobs} default (the CLI's [--engine-jobs] knob). *)

val demarcation :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  facade
(** The demarcation/escrow baseline; [stats.redistributions] counts
    completed borrows. *)

val multipaxsys :
  ?seed:int64 -> entity:Samya.Types.entity -> maximum:int -> unit -> facade
(** Spanner-style placement (three US regions + Asia + Europe); client
    requests reach the leader through the nearest replica gateway, so a
    partition that separates a client's side from the leader makes that
    client's requests fail, as in Fig. 3d. *)

val cockroach :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  entity:Samya.Types.entity ->
  maximum:int ->
  unit ->
  facade
(** The handle is returned with elections already settled (the engine is
    pre-run until a leader exists). *)
