(** Self-contained run reports — the [samya_cli report] artifact.

    Renders a trace-capture list (the same captures [trace]/[explain]/
    [slo] consume) into a single document: per system, the outcome
    summary, the committed-throughput timeline, the SLO verdict, the
    mechanism attribution from the flight recorder, the request-path
    hot-key sketch and the watchdog incidents with the first incident's
    black-box bundle.

    Both renderers are pure functions of the captures and the run
    metadata — no wall-clock stamps — so reports are byte-identical for
    a given seed at any [--jobs] level. *)

type meta = { experiment : string; quick : bool; seed : int64 }

val markdown : meta -> Exp_trace.capture list -> string
(** GitHub-flavoured markdown: pipe tables, fenced code blocks for the
    incident log and black box, an ASCII sparkline for throughput. *)

val html : meta -> Exp_trace.capture list -> string
(** One self-contained HTML page (inline styles, inline-SVG throughput
    figure, no external assets) — the CI artifact. *)
