(** The adaptive-contention scenario — the Mechanism API headline.

    One hot entity on a five-site cluster is driven through a
    three-phase skew ramp: cold and uniform (local escrow suffices),
    moderately home-skewed (a peer borrow is cheaper than consensus),
    then sustained global pressure (only batched Avantan re-division
    tracks demand). Four arms replay the identical stream through the
    contention controller — three with the token-movement mechanism
    pinned and one adaptive. Output: per-arm outcome table with
    mechanism traffic, per-phase committed-throughput and p99 tables,
    the throughput figure, the verdict table (the adaptive arm must
    meet or beat the best static per phase on both axes, within
    tolerance), per-arm SLO summaries and a token-conservation audit. *)

type phase_def = {
  ph_name : string;
  ph_until_ms : float;  (** phase end, absolute *)
  ph_rate_per_s : float;
  ph_affinity : float;  (** probability an arrival issues from home *)
}

type scale = {
  phases : phase_def list;  (** contiguous; the last end is the stream end *)
  duration_ms : float;
  hold_ms : float;  (** grant lifetime: the driver's grant-driven release *)
  quota : int;  (** the hot entity's global maximum *)
}

val scale : quick:bool -> scale

type arm = {
  a_id : string;  (** stable key: "escrow", "borrow", "redistribute", "adaptive" *)
  a_label : string;
  a_policy : Samya.Config.Controller.policy;
}

val arms : arm list
(** The four policies, in report order; the adaptive arm is last. *)

type capture = {
  scale : scale;
  arm : arm;
  cluster : Samya.Cluster.t;
  offered : int;
  sink : Obs.Sink.t option;  (** present when captured with [~observe] *)
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  final_mechanism : string;  (** the home site's mechanism at the end *)
  flight : Obs.Flight_recorder.t;  (** the always-on black box *)
  hot : Obs.Heavy_hitters.Windowed.w;  (** request-path hot-key sketch *)
  incidents : Obs.Watchdog.incident list;
      (** watchdog verdict over the recorder dump, default rules *)
}

val capture :
  ?engine_jobs:int -> ?observe:bool -> quick:bool -> arm:arm -> unit -> capture
(** Build one arm's cluster with its controller policy, replay the
    skew-ramp stream, return the instrumented outcome. [engine_jobs]
    defaults to the process-wide {!Pool} setting; [observe] (default
    false) additionally subscribes a full observability sink — the
    [explain]/[slo] command path. *)

type phase_row = { v_name : string; v_tps : float; v_p99 : float }

val phase_rows : capture -> phase_row list
(** Committed txn/s over each phase's wall time and the p99 of its
    committed latencies, in phase order. *)

type verdict_row = {
  w_phase : string;
  w_best : string;  (** the benchmark static arm's label *)
  w_best_tps : float;
  w_best_p99 : float;
  w_adaptive_tps : float;
  w_adaptive_p99 : float;
  w_ok : bool;
}

val verdicts : capture list -> verdict_row list
(** Per phase: the benchmark is the static arm with the highest
    committed throughput (ties broken by lower p99); [w_ok] holds when
    the adaptive arm meets that arm's throughput and p99 within
    tolerance. *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
(** The registry experiment: all four arms, tables, figure, verdict. *)
