(** Experiments `table2b` / `fig3b`: commit latency percentiles and
    throughput over an hour of contentious load for all five systems
    (§5.3).

    The paper's headline results to reproduce in shape:
    - latency ordering: Samya[(n+1)/2] < Samya[*] < Dem./Escrow <<
      MultiPaxSys < CockroachDB at every percentile (Table 2b);
    - Samya commits ~16-18x more transactions than MultiPaxSys/CockroachDB
      and ~1.3x more than Demarcation/Escrow (Fig. 3b);
    - Avantan[(n+1)/2] executes far fewer redistributions than Avantan[*]
      (208 vs 792 in the paper). *)

val builders :
  ?engine_jobs:int -> Lab.context -> (string * (unit -> Systems.facade)) list
(** The five systems in fixed display order, as thunks (shared with the
    trace capture, {!Exp_trace}). [engine_jobs] overrides the pool-level
    engine-sharding setting for the Samya systems (the trace capture pins
    it to [0]); omitted, they follow {!Pool.engine_jobs}. *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
