(** Randomized chaos soak (robustness extension, not a paper artifact):
    for each Avantan variant, K {!Chaos.Soak} runs under seed-derived
    Nemesis fault schedules with crash-amnesia durable recovery, reporting
    survived-seed counts, recovery-to-service latency and any auditor
    violations with their one-command repro lines. *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
