let entity = Exp_common.entity
let maximum = Exp_common.maximum
let seed = Exp_common.seed

let samya ~forecaster ?name config () =
  Systems.samya ~seed ?name ~config
    ~regions:(Exp_common.client_regions ())
    ~forecaster ~entity ~maximum ()

let totals_table fmt outcomes =
  Report.table fmt ~title:"Totals"
    ~header:[ "variant"; "committed"; "rejected"; "no-reply"; "redistributions"; "invariant" ]
    ~rows:
      (List.map
         (fun (o : Exp_common.outcome) ->
           [
             o.label;
             string_of_int o.result.Driver.committed;
             string_of_int o.result.Driver.rejected;
             string_of_int o.result.Driver.no_reply;
             string_of_int o.redistributions;
             Exp_common.pp_invariant o.invariant;
           ])
         outcomes)

let committed label outcomes =
  let o = List.find (fun (o : Exp_common.outcome) -> o.label = label) outcomes in
  o.result.Driver.committed

let run_group ctx ~quick ~full_min ~quick_min variants =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min ~quick_min in
  (* The ablations quantify what redistribution buys, so the workload must
     press against both the per-site shares and the global limit: start at
     the daily ramp with a raised usage footprint. *)
  let requests =
    Lab.workload ctx ~client_regions:(Exp_common.client_regions ()) ~duration_ms
      ~usage_scale:2.2 ~start_hours:6.0 ~seed ()
  in
  let forecaster = Lab.runtime_forecaster ctx in
  let outcomes =
    Pool.map
      (fun (label, config) ->
        Exp_common.run_system ~label ~build:(samya ~forecaster ~name:label config)
          ~requests ~duration_ms ~window_ms:(Exp_common.window_ms ~quick) ())
      variants
  in
  (duration_ms, outcomes)

let run_constraint_ablation ctx ~quick fmt =
  let maj = Exp_common.samya_config Samya.Config.Majority in
  let star = Exp_common.samya_config Samya.Config.Star in
  let variants =
    [
      ("No constraints", { maj with Samya.Config.enforce_constraint = false });
      ("Avantan[(n+1)/2]", maj);
      ("Avantan[*]", star);
      ("No redistribution", { maj with Samya.Config.redistribution_enabled = false });
    ]
  in
  Format.fprintf fmt "@.== Fig 3e: no constraint vs no redistribution (§5.5) ==@.";
  let duration_ms, outcomes = run_group ctx ~quick ~full_min:25.0 ~quick_min:8.0 variants in
  let series =
    List.map
      (fun (o : Exp_common.outcome) -> (o.label, Exp_common.throughput_series o ~duration_ms))
      outcomes
  in
  Report.series fmt ~title:"Fig 3e: committed throughput" ~unit_label:"txn/s" series;
  totals_table fmt outcomes;
  let optimal = committed "No constraints" outcomes in
  let pct label =
    100.0 *. (1.0 -. (float_of_int (committed label outcomes) /. float_of_int optimal))
  in
  Report.kv fmt
    [
      ("Avantan[(n+1)/2] below optimum", Report.f2 (pct "Avantan[(n+1)/2]") ^ " %  (paper: 3.5-4 %)");
      ("Avantan[*] below optimum", Report.f2 (pct "Avantan[*]") ^ " %  (paper: 3.5-4 %)");
      ("No redistribution below optimum", Report.f2 (pct "No redistribution") ^ " %  (paper: ~14 %)");
    ]

let run_prediction_ablation ctx ~quick fmt =
  let maj = Exp_common.samya_config Samya.Config.Majority in
  let star = Exp_common.samya_config Samya.Config.Star in
  let variants =
    [
      ("Avantan[(n+1)/2]", maj);
      ("Avantan[(n+1)/2] no predict", { maj with Samya.Config.prediction_enabled = false });
      ("Avantan[*]", star);
      ("Avantan[*] no predict", { star with Samya.Config.prediction_enabled = false });
    ]
  in
  Format.fprintf fmt "@.== Fig 3f: proactive vs reactive redistributions (§5.6) ==@.";
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:30.0 ~quick_min:8.0 in
  let requests =
    Lab.workload ctx ~client_regions:(Exp_common.client_regions ()) ~duration_ms
      ~usage_scale:2.2 ~start_hours:6.0 ~seed ()
  in
  let forecaster = Lab.runtime_forecaster ctx in
  let outcomes =
    Pool.map
      (fun (label, config) ->
        let t_system = samya ~forecaster ~name:label config () in
        let spec =
          {
            (Driver.default_spec ~client_regions:(Exp_common.client_regions ()) ~requests
               ~duration_ms)
            with
            window_ms = Exp_common.window_ms ~quick;
            client_timeout_ms = 600.0;
          }
        in
        let result = Driver.run ~t_system spec in
        {
          Exp_common.label;
          result;
          redistributions = (t_system.Systems.stats ()).Systems.redistributions;
          invariant = t_system.Systems.invariant ~maximum;
        })
      variants
  in
  let series =
    List.map
      (fun (o : Exp_common.outcome) -> (o.label, Exp_common.throughput_series o ~duration_ms))
      outcomes
  in
  Report.series fmt ~title:"Fig 3f: committed throughput (0.6 s client timeout)"
    ~unit_label:"txn/s" series;
  totals_table fmt outcomes;
  let ratio with_p without_p =
    float_of_int (committed with_p outcomes) /. float_of_int (committed without_p outcomes)
  in
  let redistributions label =
    let o = List.find (fun (o : Exp_common.outcome) -> o.label = label) outcomes in
    o.redistributions
  in
  let sync_reduction with_p without_p =
    float_of_int (redistributions without_p) /. float_of_int (max 1 (redistributions with_p))
  in
  Report.kv fmt
    [
      ( "Avantan[(n+1)/2] with/without prediction",
        Report.f2 (ratio "Avantan[(n+1)/2]" "Avantan[(n+1)/2] no predict") ^ "x  (paper: ~1.4x)" );
      ( "Avantan[*] with/without prediction",
        Report.f2 (ratio "Avantan[*]" "Avantan[*] no predict") ^ "x  (paper: ~1.4x)" );
      ( "synchronizations avoided by prediction",
        Printf.sprintf "%.0fx fewer (maj), %.0fx fewer (star)"
          (sync_reduction "Avantan[(n+1)/2]" "Avantan[(n+1)/2] no predict")
          (sync_reduction "Avantan[*]" "Avantan[*] no predict") );
    ]
