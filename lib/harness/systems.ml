type t = {
  name : string;
  engine : Des.Engine.t;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  crash_region : Geonet.Region.t -> unit;
  crash_site : int -> unit;
  recover_site : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  redistributions : unit -> int;
  invariant : maximum:int -> (unit, string) result;
}

let sites_in regions region =
  let out = ref [] in
  Array.iteri (fun i r -> if r = region then out := i :: !out) regions;
  !out

let samya ?seed ?name ~config ~regions ?forecaster ?on_protocol_event ~entity ~maximum () =
  let cluster =
    Samya.Cluster.create ?seed ~config ~regions ?forecaster ?on_protocol_event ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  let default_name =
    match config.Samya.Config.variant with
    | Samya.Config.Majority -> "Samya w/ Av.[(n+1)/2]"
    | Samya.Config.Star -> "Samya w/ Av.[*]"
  in
  {
    name = Option.value name ~default:default_name;
    engine = Samya.Cluster.engine cluster;
    submit = (fun ~region request ~reply -> Samya.Cluster.submit cluster ~region request ~reply);
    crash_region =
      (fun region -> List.iter (Samya.Cluster.crash_site cluster) (sites_in regions region));
    crash_site = (fun i -> Samya.Cluster.crash_site cluster i);
    recover_site = (fun i -> Samya.Cluster.recover_site cluster i);
    partition = (fun groups -> Samya.Cluster.partition cluster groups);
    heal = (fun () -> Samya.Cluster.heal cluster);
    redistributions =
      (fun () ->
        (* The paper counts proactive and reactive triggers combined. *)
        let s = Samya.Cluster.aggregate_stats cluster in
        s.Samya.Site.proactive_triggers + s.Samya.Site.reactive_triggers);
    invariant = (fun ~maximum -> Samya.Cluster.check_invariant cluster ~entity ~maximum);
  }

let demarcation ?seed ?regions ~entity ~maximum () =
  let regions =
    match regions with Some r -> r | None -> Array.of_list Geonet.Region.default_five
  in
  let system = Baselines.Demarcation.create ?seed ~regions () in
  Baselines.Demarcation.init_entity system ~entity ~maximum;
  {
    name = "Dem./Escrow";
    engine = Baselines.Demarcation.engine system;
    submit =
      (fun ~region request ~reply -> Baselines.Demarcation.submit system ~region request ~reply);
    crash_region =
      (fun region ->
        List.iter (Baselines.Demarcation.crash_site system) (sites_in regions region));
    crash_site = (fun i -> Baselines.Demarcation.crash_site system i);
    recover_site = (fun i -> Baselines.Demarcation.recover_site system i);
    partition = (fun groups -> Baselines.Demarcation.partition system groups);
    heal = (fun () -> Baselines.Demarcation.heal system);
    redistributions = (fun () -> Baselines.Demarcation.borrows system);
    invariant = (fun ~maximum -> Baselines.Demarcation.check_invariant system ~entity ~maximum);
  }

let multipaxsys ?seed ~entity ~maximum () =
  let system = Baselines.Multipaxsys.create ?seed () in
  Baselines.Multipaxsys.init_entity system ~entity ~maximum;
  let regions = Baselines.Multipaxsys.regions in
  {
    name = "MultiPaxSys";
    engine = Baselines.Multipaxsys.engine system;
    submit =
      (fun ~region request ~reply -> Baselines.Multipaxsys.submit system ~region request ~reply);
    crash_region =
      (fun region ->
        List.iter (Baselines.Multipaxsys.crash_site system) (sites_in regions region));
    crash_site = (fun i -> Baselines.Multipaxsys.crash_site system i);
    recover_site = (fun i -> Baselines.Multipaxsys.recover_site system i);
    partition = (fun groups -> Baselines.Multipaxsys.partition system groups);
    heal = (fun () -> Baselines.Multipaxsys.heal system);
    redistributions = (fun () -> 0);
    invariant = (fun ~maximum -> Baselines.Multipaxsys.check_invariant system ~entity ~maximum);
  }

let cockroach ?seed ?regions ~entity ~maximum () =
  let regions =
    match regions with
    | Some r -> r
    | None ->
        [| Geonet.Region.Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 |]
  in
  let system = Baselines.Cockroach_sim.create ?seed ~regions () in
  Baselines.Cockroach_sim.init_entity system ~entity ~maximum;
  Baselines.Cockroach_sim.start system;
  (* Let the first election settle before load arrives. *)
  let engine = Baselines.Cockroach_sim.engine system in
  let rec settle guard =
    if guard > 0 && Baselines.Cockroach_sim.leader system = None then begin
      Des.Engine.run_for engine 1_000.0;
      settle (guard - 1)
    end
  in
  settle 30;
  {
    name = "CockroachDB";
    engine;
    submit =
      (fun ~region request ~reply ->
        Baselines.Cockroach_sim.submit system ~region request ~reply);
    crash_region =
      (fun region ->
        List.iter (Baselines.Cockroach_sim.crash_site system) (sites_in regions region));
    crash_site = (fun i -> Baselines.Cockroach_sim.crash_site system i);
    recover_site = (fun i -> Baselines.Cockroach_sim.recover_site system i);
    partition = (fun groups -> Baselines.Cockroach_sim.partition system groups);
    heal = (fun () -> Baselines.Cockroach_sim.heal system);
    redistributions = (fun () -> 0);
    invariant =
      (fun ~maximum -> Baselines.Cockroach_sim.check_invariant system ~entity ~maximum);
  }
