(* Re-export the facade record so harness code reads
   [t.Systems.engine]; the type lives in [lib/facade] (below chaos) so
   the soak can drive clusters through the same interface. *)
type stats = Facade.stats = {
  redistributions : int;
  borrows : int;
  borrow_tokens : int;
  mechanism_switches : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
}

type facade = Facade.t = {
  name : string;
  engine : Des.Engine.t;
  now : unit -> float;
  sched_region : Geonet.Region.t -> Des.Engine.t;
  schedule_global : time_ms:float -> (unit -> unit) -> unit;
  run_until : float -> unit;
  engine_lanes : int;
  acquire :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  release :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  read : region:Geonet.Region.t -> reply:(Samya.Types.response -> unit) -> unit;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  crash_region : Geonet.Region.t -> unit;
  crash_site : int -> unit;
  recover_site : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  stats : unit -> stats;
  subscribe : Obs.Sink.t -> unit;
  arm : Obs.Flight_recorder.attachment -> unit;
  invariant : maximum:int -> (unit, string) result;
}

let sites_in = Facade.sites_in

let samya ?seed ?engine_jobs ?name ~config ~regions ?forecaster ?on_protocol_event
    ~entity ~maximum () =
  let hooks = Facade.samya_hooks ?on_protocol_event () in
  (* The CLI's --engine-jobs knob reaches every Samya built by the
     experiment registry through the Pool default; an explicit argument
     (tests, the trace path) overrides it. *)
  let engine_jobs =
    match engine_jobs with Some n -> n | None -> Pool.engine_jobs ()
  in
  let cluster =
    Samya.Cluster.create ?seed ~engine_jobs ~config ~regions ?forecaster
      ~on_protocol_event:(Facade.protocol_event_hook hooks)
      ~obs:(Facade.obs_port hooks) ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  let default_name =
    match config.Samya.Config.variant with
    | Samya.Config.Majority -> "Samya w/ Av.[(n+1)/2]"
    | Samya.Config.Star -> "Samya w/ Av.[*]"
  in
  Facade.of_samya_cluster
    ~name:(Option.value name ~default:default_name)
    ~hooks ~regions ~entity cluster

(* Baseline adapters share one shape: verbs bound to the entity, stats
   from the internal network counters, subscribe = engine tracer +
   network tracer + named site lanes. *)
let baseline ?(borrows = fun () -> 0) ~name ~engine ~regions ~entity ~submit
    ~crash_site ~recover_site ~partition ~heal ~redistributions ~net_stats
    ~set_net_tracer ~obs_port ~invariant () =
  {
    name;
    engine;
    (* Baselines stay on the legacy single-engine path: the record's
       scheduling surface degenerates to the plain engine operations. *)
    now = (fun () -> Des.Engine.now engine);
    sched_region = (fun _ -> engine);
    schedule_global = (fun ~time_ms f -> Des.Engine.schedule_at engine ~time_ms f);
    run_until = (fun until_ms -> Des.Engine.run engine ~until_ms);
    engine_lanes = 1;
    acquire =
      (fun ~region ~amount ~reply ->
        submit ~region (Samya.Types.Acquire { entity; amount; deadline_ms = infinity }) ~reply);
    release =
      (fun ~region ~amount ~reply ->
        submit ~region (Samya.Types.Release { entity; amount; deadline_ms = infinity }) ~reply);
    read = (fun ~region ~reply -> submit ~region (Samya.Types.Read { entity; deadline_ms = infinity }) ~reply);
    submit;
    crash_region = (fun region -> List.iter crash_site (sites_in regions region));
    crash_site;
    recover_site;
    partition;
    heal;
    stats =
      (fun () ->
        let sent, delivered, dropped = net_stats () in
        {
          redistributions = redistributions ();
          borrows = borrows ();
          borrow_tokens = 0;
          mechanism_switches = 0;
          messages_sent = sent;
          messages_delivered = delivered;
          messages_dropped = dropped;
        });
    subscribe =
      (fun sink ->
        Obs.Sink.attach obs_port sink;
        Des.Engine.set_tracer engine (Some (Facade.engine_tracer sink));
        set_net_tracer
          (Some
             (Facade.network_tracer
                ~context:(fun () -> Des.Engine.current_context engine)
                sink));
        Array.iteri
          (fun i region ->
            Obs.Span.thread_name sink.Obs.Sink.spans ~tid:i
              (Printf.sprintf "site %d (%s)" i (Geonet.Region.name region)))
          regions);
    (* Baselines have no breaker/controller/shed machinery to record. *)
    arm = (fun (_ : Obs.Flight_recorder.attachment) -> ());
    invariant;
  }

let demarcation ?seed ?regions ~entity ~maximum () =
  let regions =
    match regions with Some r -> r | None -> Array.of_list Geonet.Region.default_five
  in
  let system = Baselines.Demarcation.create ?seed ~regions () in
  Baselines.Demarcation.init_entity system ~entity ~maximum;
  baseline ~name:"Dem./Escrow"
    ~borrows:(fun () -> Baselines.Demarcation.borrows system)
    ~engine:(Baselines.Demarcation.engine system)
    ~regions ~entity
    ~submit:(fun ~region request ~reply ->
      Baselines.Demarcation.submit system ~region request ~reply)
    ~crash_site:(Baselines.Demarcation.crash_site system)
    ~recover_site:(Baselines.Demarcation.recover_site system)
    ~partition:(Baselines.Demarcation.partition system)
    ~heal:(fun () -> Baselines.Demarcation.heal system)
    ~redistributions:(fun () -> Baselines.Demarcation.borrows system)
    ~net_stats:(fun () -> Baselines.Demarcation.net_stats system)
    ~set_net_tracer:(Baselines.Demarcation.set_net_tracer system)
    ~obs_port:(Baselines.Demarcation.obs_port system)
    ~invariant:(fun ~maximum ->
      Baselines.Demarcation.check_invariant system ~entity ~maximum)
    ()

let multipaxsys ?seed ~entity ~maximum () =
  let system = Baselines.Multipaxsys.create ?seed () in
  Baselines.Multipaxsys.init_entity system ~entity ~maximum;
  let regions = Baselines.Multipaxsys.regions in
  baseline ~name:"MultiPaxSys"
    ~engine:(Baselines.Multipaxsys.engine system)
    ~regions ~entity
    ~submit:(fun ~region request ~reply ->
      Baselines.Multipaxsys.submit system ~region request ~reply)
    ~crash_site:(Baselines.Multipaxsys.crash_site system)
    ~recover_site:(Baselines.Multipaxsys.recover_site system)
    ~partition:(Baselines.Multipaxsys.partition system)
    ~heal:(fun () -> Baselines.Multipaxsys.heal system)
    ~redistributions:(fun () -> 0)
    ~net_stats:(fun () -> Baselines.Multipaxsys.net_stats system)
    ~set_net_tracer:(Baselines.Multipaxsys.set_net_tracer system)
    ~obs_port:(Baselines.Multipaxsys.obs_port system)
    ~invariant:(fun ~maximum ->
      Baselines.Multipaxsys.check_invariant system ~entity ~maximum)
    ()

let cockroach ?seed ?regions ~entity ~maximum () =
  let regions =
    match regions with
    | Some r -> r
    | None ->
        [| Geonet.Region.Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 |]
  in
  let system = Baselines.Cockroach_sim.create ?seed ~regions () in
  Baselines.Cockroach_sim.init_entity system ~entity ~maximum;
  Baselines.Cockroach_sim.start system;
  (* Let the first election settle before load arrives. *)
  let engine = Baselines.Cockroach_sim.engine system in
  let rec settle guard =
    if guard > 0 && Baselines.Cockroach_sim.leader system = None then begin
      Des.Engine.run_for engine 1_000.0;
      settle (guard - 1)
    end
  in
  settle 30;
  baseline ~name:"CockroachDB" ~engine ~regions ~entity
    ~submit:(fun ~region request ~reply ->
      Baselines.Cockroach_sim.submit system ~region request ~reply)
    ~crash_site:(Baselines.Cockroach_sim.crash_site system)
    ~recover_site:(Baselines.Cockroach_sim.recover_site system)
    ~partition:(Baselines.Cockroach_sim.partition system)
    ~heal:(fun () -> Baselines.Cockroach_sim.heal system)
    ~redistributions:(fun () -> 0)
    ~net_stats:(fun () -> Baselines.Cockroach_sim.net_stats system)
    ~set_net_tracer:(Baselines.Cockroach_sim.set_net_tracer system)
    ~obs_port:(Baselines.Cockroach_sim.obs_port system)
    ~invariant:(fun ~maximum ->
      Baselines.Cockroach_sim.check_invariant system ~entity ~maximum)
    ()
