(** The retry-storm scenario — the overload-resilience headline.

    A flash sale spikes one entity's demand past its home site's CPU
    capacity just after a partition cuts the home region off from its
    peers, so redistribution aborts repeatedly and the circuit breaker
    trips mid-storm. Four
    client populations replay the identical stream — no retries, naive
    immediate retries, exponential backoff with jitter, and backoff
    against the full overload-resilience stack (deadline propagation,
    the CoDel-style admission gate, the redistribution circuit breaker).
    Output: the per-arm outcome and server-resilience tables, the
    throughput figure, the recovery verdict (post-heal goodput vs each
    arm's own pre-fault goodput: naive retries stay metastable, backoff
    plus admission recovers), per-arm SLO summaries with the abort-class
    breakdown, and a token-conservation audit. *)

type scale = {
  base_rate_per_s : float;
  spike_rate_per_s : float;
  spike_start_ms : float;
  spike_end_ms : float;
  partition_at_ms : float;
  partition_heal_ms : float;
  duration_ms : float;
  hold_ms : float;
  quota : int;
  timeout_ms : float;
  pre_from_ms : float;
  post_from_ms : float;
}

val scale : quick:bool -> scale

type arm = {
  a_id : string;  (** stable key: "none", "naive", "backoff", "admission" *)
  a_label : string;
  a_retry : Driver.retry option;
  a_admission : bool;
      (** deadlines + admission gate + circuit breaker on the cluster *)
}

val arms : arm list
(** The four client populations, in report order. *)

type capture = {
  scale : scale;
  arm : arm;
  cluster : Samya.Cluster.t;
  offered : int;
  sink : Obs.Sink.t option;  (** present when captured with [~observe] *)
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  shed_deadline : int;
  shed_admission : int;
  shed_expired : int;
  queue_peak : int;
  breaker_trips : int;
  flight : Obs.Flight_recorder.t;
      (** the always-on black box (armed for every arm) *)
  hot : Obs.Heavy_hitters.Windowed.w;  (** request-path hot-key sketch *)
  incidents : Obs.Watchdog.incident list;
      (** watchdog verdict over the recorder dump, default rules *)
}

val capture :
  ?engine_jobs:int -> ?observe:bool -> quick:bool -> arm:arm -> unit -> capture
(** Build one arm's cluster, replay the flash-sale stream through its
    retry policy, return the instrumented outcome. [engine_jobs] defaults
    to the process-wide {!Pool} setting; [observe] (default false)
    additionally subscribes a full observability sink — the
    [explain]/[slo] command path. *)

val recovery : capture -> float * float * float
(** [(pre_fault_tps, post_heal_tps, post/pre)] — the metastability
    measure ([nan] ratio if the pre-fault window saw no commits). *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
(** The registry experiment: all four arms, tables, figure, verdict. *)
