let entity = "VM"

let maximum = 5_000

let seed = 20_210_414L (* ICDE 2021 *)

let client_regions () = Array.of_list Geonet.Region.default_five

let duration_ms ~quick ~full_min ~quick_min =
  60_000.0 *. if quick then quick_min else full_min

let samya_config variant = { Samya.Config.default with variant }

let window_ms ~quick = if quick then 30_000.0 else 60_000.0

type outcome = {
  label : string;
  result : Driver.result;
  redistributions : int;
  invariant : (unit, string) result;
}

let run_system ?clients ~label ~build ~requests ~duration_ms ?window_ms ?events
    ?(client_crash = []) () =
  let t_system = build () in
  let clients = Option.value clients ~default:(client_regions ()) in
  let spec =
    {
      (Driver.default_spec ~client_regions:clients ~requests ~duration_ms) with
      window_ms = Option.value window_ms ~default:10_000.0;
      events = (match events with Some f -> f t_system | None -> []);
      client_crash;
    }
  in
  let result = Driver.run ~t_system spec in
  {
    label;
    result;
    redistributions = (t_system.Systems.stats ()).Systems.redistributions;
    invariant = t_system.Systems.invariant ~maximum;
  }

let throughput_series outcome ~duration_ms =
  (* Trim the boundary window, which is empty by construction. *)
  Stats.Throughput.series outcome.result.Driver.throughput ~until_ms:(duration_ms -. 1.0) ()

let pp_invariant = function
  | Ok () -> "OK"
  | Error reason -> "VIOLATED: " ^ reason
