(* A fixed global budget of extra worker domains, shared by every [map] on
   every level of the experiment tree. Each call hires as many workers as
   the budget allows (never more than items - 1: the caller always works
   too) and returns them when done, so nested fan-outs — trials inside an
   experiment inside the top-level sweep — degrade gracefully to inline
   execution instead of oversubscribing or deadlocking. *)

let budget = Atomic.make 0 (* extra domains available beyond each caller *)

let configured = Atomic.make 1

let set_jobs n =
  let n = max 1 n in
  Atomic.set configured n;
  Atomic.set budget (n - 1)

let jobs () = Atomic.get configured

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Engine sharding level (the CLI's --engine-jobs): 0 = legacy
   single-engine simulation, n >= 1 = region-sharded with up to n domains
   per run. A process-wide default rather than a parameter thread because
   the experiment registry builds systems many layers below the CLI. *)
let engine_jobs_level = Atomic.make 0

let set_engine_jobs n = Atomic.set engine_jobs_level (max 0 n)

let engine_jobs () = Atomic.get engine_jobs_level

let rec acquire_up_to n =
  if n = 0 then 0
  else
    let available = Atomic.get budget in
    if available = 0 then 0
    else
      let take = min n available in
      if Atomic.compare_and_set budget available (available - take) then take
      else acquire_up_to n

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget n)

let map f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f arr.(i) with
        | value -> results.(i) <- Some value
        | exception exn ->
            (* First failure wins; remaining items are skipped, the
               exception resurfaces in the caller once workers join. *)
            ignore (Atomic.compare_and_set failure None (Some exn)));
        worker ()
      end
    in
    let hired = acquire_up_to (n - 1) in
    let domains = List.init hired (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    release hired;
    (match Atomic.get failure with Some exn -> raise exn | None -> ());
    Array.to_list (Array.map Option.get results)
  end
