(** Fixed-size domain pool for independent, deterministic trials.

    The pool is a process-wide budget of [jobs - 1] extra worker domains
    (the calling domain always participates, so [jobs = 1] means fully
    sequential, inline execution). {!map} fans its items out over however
    many workers the budget can currently supply and collects results {e in
    input order}, so a parallel run of pure tasks is observationally
    identical to [List.map] — the property the bench harness relies on for
    byte-identical output at any [--jobs] level.

    Nested {!map} calls are safe: inner calls simply find the budget empty
    and run inline on their caller's domain. Tasks must not depend on
    shared mutable state unless that state is independently synchronised
    (see [Lab]'s fitted-model caches). *)

val set_jobs : int -> unit
(** Set the global parallelism level (clamped to at least 1). Call once,
    before any {!map}, from the main domain. *)

val jobs : unit -> int
(** The configured parallelism level (default 1). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

val set_engine_jobs : int -> unit
(** Process-wide default for the {e engine-sharding} level picked up by
    {!Systems.samya} (the CLI's [--engine-jobs]): [0] (the default) keeps
    the legacy single-engine simulation; [n >= 1] shards the simulation
    by region with up to [n] domains draining windows. Orthogonal to
    {!set_jobs}, which parallelises {e across} independent runs; results
    are byte-identical for every [n >= 1]. Clamped to at least 0. *)

val engine_jobs : unit -> int
(** The configured engine-sharding level (default 0). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f items] applies [f] to every item, possibly in parallel, and
    returns the results in input order. If any application raises, the
    first exception (in completion order) is re-raised after all workers
    have joined; remaining unstarted items are skipped. *)
