(* Self-contained run reports — the `samya_cli report` artifact.

   One document per invocation, rendering every captured system's
   outcome, SLO verdict, throughput timeline, mechanism attribution,
   hot-key telemetry and watchdog incidents (with the first incident's
   black-box bundle) from the always-on incident layer. Two formats from
   the same computed view: GitHub-flavoured markdown and a single-file
   HTML page with inline styles and an inline-SVG throughput figure —
   no external assets, so the CI artifact opens anywhere.

   Determinism: everything here is a pure function of the captures and
   the run metadata (no wall-clock stamps), so reports are byte-identical
   for a given seed at any --jobs level. *)

type meta = { experiment : string; quick : bool; seed : int64 }

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let slo_value (l : Obs.Slo.report_line) v =
  if Float.is_nan v then "-"
  else if l.Obs.Slo.kind = "latency" then Report.ms v
  else pct v

(* ------------------------------------------------------------------ *)
(* The computed view shared by both renderers                           *)

let outcome_pairs (c : Exp_trace.capture) =
  let r = c.Exp_trace.result in
  [
    ("committed", string_of_int r.Driver.committed);
    ("rejected", string_of_int r.Driver.rejected);
    ("unavailable", string_of_int r.Driver.unavailable);
    ("shed", string_of_int r.Driver.shed);
    ("timed out", string_of_int r.Driver.timed_out);
    ("retries", string_of_int r.Driver.retries);
    ("avg throughput", Report.f1 (Driver.average_tps r) ^ " txn/s");
    ("p50 latency", Report.ms (Driver.percentile r 50.0));
    ("p95 latency", Report.ms (Driver.percentile r 95.0));
    ("p99 latency", Report.ms (Driver.percentile r 99.0));
  ]

(* What the defenses and the protocol did, straight from the recorder:
   event counts by kind, sheds split by cause, mechanism transitions. *)
let attribution_pairs (c : Exp_trace.capture) =
  let events = Obs.Flight_recorder.events c.Exp_trace.flight in
  let count p = List.length (List.filter p events) in
  let kind k (ev : Obs.Flight_recorder.event) = ev.Obs.Flight_recorder.kind = k in
  let shed why (ev : Obs.Flight_recorder.event) =
    kind Obs.Flight_recorder.Shed ev && ev.Obs.Flight_recorder.detail = why
  in
  let s = c.Exp_trace.stats in
  [
    ("redistributions", string_of_int s.Systems.redistributions);
    ("borrows", string_of_int s.Systems.borrows);
    ("mechanism switches", string_of_int s.Systems.mechanism_switches);
    ("protocol events", string_of_int (count (kind Obs.Flight_recorder.Protocol)));
    ("breaker trips", string_of_int (count (kind Obs.Flight_recorder.Breaker)));
    ("sheds (deadline)", string_of_int (count (shed "deadline")));
    ("sheds (admission)", string_of_int (count (shed "admission")));
    ("sheds (queue expired)", string_of_int (count (shed "queue_expired")));
    ("faults injected", string_of_int (count (kind Obs.Flight_recorder.Fault)));
    ("SLO breaches", string_of_int (count (kind Obs.Flight_recorder.Slo_breach)));
    ( "recorder",
      Printf.sprintf "%d events (%d dropped)"
        (Obs.Flight_recorder.recorded c.Exp_trace.flight)
        (Obs.Flight_recorder.dropped c.Exp_trace.flight) );
  ]

let hot_top (c : Exp_trace.capture) =
  Obs.Heavy_hitters.top ~n:8
    (Obs.Heavy_hitters.Windowed.cumulative c.Exp_trace.hot)

(* The first incident's black box: the bundle a post-incident review
   starts from. *)
let first_bundle (c : Exp_trace.capture) =
  match c.Exp_trace.incidents with
  | [] -> None
  | incident :: _ ->
      Some
        (Obs.Watchdog.bundle ~hot:c.Exp_trace.hot
           (Obs.Flight_recorder.events c.Exp_trace.flight)
           incident)

let throughput_points (c : Exp_trace.capture) =
  Stats.Throughput.series c.Exp_trace.result.Driver.throughput
    ~until_ms:c.Exp_trace.result.Driver.duration_ms ()

(* Downsample a windowed series to at most [target] buckets (mean within
   each bucket) — keeps the markdown sparkline and the SVG polyline
   readable on long horizons. *)
let downsample ~target points =
  let n = List.length points in
  if n <= target then points
  else begin
    let arr = Array.of_list points in
    let per = float_of_int n /. float_of_int target in
    List.init target (fun i ->
        let lo = int_of_float (float_of_int i *. per) in
        let hi = min (n - 1) (int_of_float (float_of_int (i + 1) *. per) - 1) in
        let hi = max lo hi in
        let sum = ref 0.0 in
        for j = lo to hi do
          sum := !sum +. snd arr.(j)
        done;
        (fst arr.(lo), !sum /. float_of_int (hi - lo + 1)))
  end

(* ------------------------------------------------------------------ *)
(* Markdown                                                             *)

let md_table buf ~header rows =
  let cell s = String.concat "\\|" (String.split_on_char '|' s) in
  Buffer.add_string buf ("| " ^ String.concat " | " (List.map cell header) ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
  List.iter
    (fun row ->
      Buffer.add_string buf ("| " ^ String.concat " | " (List.map cell row) ^ " |\n"))
    rows;
  Buffer.add_char buf '\n'

let md_sparkline buf points =
  let points = downsample ~target:24 points in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 1.0 points in
  Buffer.add_string buf "```\n";
  List.iter
    (fun (t, v) ->
      let width = int_of_float (40.0 *. v /. peak) in
      Buffer.add_string buf
        (Printf.sprintf "%6.1f s  %s %.0f\n" (t /. 1000.0)
           (String.make (max 1 width) '#')
           v))
    points;
  Buffer.add_string buf "```\n\n"

let slo_rows (c : Exp_trace.capture) =
  List.map
    (fun (l : Obs.Slo.report_line) ->
      [
        l.Obs.Slo.name;
        (if l.Obs.Slo.kind = "latency" then Report.ms l.Obs.Slo.target
         else pct l.Obs.Slo.target);
        string_of_int l.Obs.Slo.windows;
        string_of_int l.Obs.Slo.violations;
        slo_value l l.Obs.Slo.overall;
      ])
    (Obs.Slo.report c.Exp_trace.slo)

let md_capture buf (c : Exp_trace.capture) =
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" c.Exp_trace.label);
  md_table buf ~header:[ "outcome"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (outcome_pairs c));
  Buffer.add_string buf "### Committed throughput\n\n";
  md_sparkline buf (throughput_points c);
  let healthy = Obs.Slo.healthy (Obs.Slo.report c.Exp_trace.slo) in
  Buffer.add_string buf
    (Printf.sprintf "### SLO (samya-slo/1): %s\n\n"
       (if healthy then "healthy" else "**VIOLATED**"));
  md_table buf
    ~header:[ "objective"; "target"; "windows"; "violations"; "overall" ]
    (slo_rows c);
  Buffer.add_string buf "### Mechanism attribution\n\n";
  md_table buf ~header:[ "source"; "count" ]
    (List.map (fun (k, v) -> [ k; v ]) (attribution_pairs c));
  (match hot_top c with
  | [] -> ()
  | top ->
      Buffer.add_string buf "### Hot keys (request-path sketch)\n\n";
      md_table buf ~header:[ "key"; "estimate" ]
        (List.map (fun (k, n) -> [ k; string_of_int n ]) top));
  let incidents = c.Exp_trace.incidents in
  Buffer.add_string buf
    (Printf.sprintf "### Watchdog: %d incident%s\n\n" (List.length incidents)
       (if List.length incidents = 1 then "" else "s"));
  (match Obs.Watchdog.count_by_rule incidents with
  | [] -> Buffer.add_string buf "No incidents: every rule stayed quiet.\n\n"
  | pairs ->
      md_table buf ~header:[ "rule"; "count" ]
        (List.map (fun (r, n) -> [ r; string_of_int n ]) pairs);
      Buffer.add_string buf "```\n";
      List.iteri
        (fun i incident ->
          if i < 20 then
            Buffer.add_string buf (Obs.Watchdog.incident_line incident ^ "\n"))
        incidents;
      if List.length incidents > 20 then
        Buffer.add_string buf
          (Printf.sprintf "(… %d more)\n" (List.length incidents - 20));
      Buffer.add_string buf "```\n\n");
  match first_bundle c with
  | None -> ()
  | Some b ->
      Buffer.add_string buf "### Black box (first incident)\n\n```\n";
      Buffer.add_string buf
        ("trigger: " ^ Obs.Watchdog.incident_line b.Obs.Watchdog.b_incident ^ "\n");
      List.iter
        (fun ev -> Buffer.add_string buf ("  " ^ Obs.Flight_recorder.line ev ^ "\n"))
        b.Obs.Watchdog.b_events;
      (match (b.Obs.Watchdog.b_hot, b.Obs.Watchdog.b_hot_window) with
      | [], _ -> ()
      | top, window ->
          Buffer.add_string buf
            (match window with
            | Some start ->
                Printf.sprintf "hot keys in breached window (from %.0f s):"
                  (start /. 1000.0)
            | None -> "hot keys (cumulative):");
          List.iter
            (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "  %s %d" k n))
            top;
          Buffer.add_char buf '\n');
      Buffer.add_string buf "```\n\n"

let markdown meta captures =
  let buf = Buffer.create (1 lsl 14) in
  Buffer.add_string buf
    (Printf.sprintf "# Samya run report: %s\n\n" meta.experiment);
  Buffer.add_string buf
    (Printf.sprintf "Horizon: %s · seed %Ld · %d system%s\n\n"
       (if meta.quick then "quick" else "full")
       meta.seed (List.length captures)
       (if List.length captures = 1 then "" else "s"));
  List.iter (md_capture buf) captures;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* HTML                                                                 *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|body{font-family:ui-sans-serif,system-ui,sans-serif;margin:2rem auto;max-width:60rem;
padding:0 1rem;color:#1a1a1a;line-height:1.45}
h1{border-bottom:2px solid #ddd;padding-bottom:.3rem}
h2{margin-top:2.2rem;border-bottom:1px solid #eee;padding-bottom:.2rem}
table{border-collapse:collapse;margin:.6rem 0 1.2rem}
th,td{border:1px solid #ddd;padding:.25rem .6rem;text-align:left;
font-variant-numeric:tabular-nums}
th{background:#f5f5f5}
pre{background:#f7f7f8;border:1px solid #eee;border-radius:4px;
padding:.6rem .8rem;overflow-x:auto;font-size:.85rem}
.violated{color:#b00020;font-weight:600}
.healthy{color:#0a7a32;font-weight:600}
svg{margin:.4rem 0 1rem}
.meta{color:#666}|}

let html_table buf ~header rows =
  Buffer.add_string buf "<table><tr>";
  List.iter (fun h -> Buffer.add_string buf ("<th>" ^ escape h ^ "</th>")) header;
  Buffer.add_string buf "</tr>";
  List.iter
    (fun row ->
      Buffer.add_string buf "<tr>";
      List.iter (fun v -> Buffer.add_string buf ("<td>" ^ escape v ^ "</td>")) row;
      Buffer.add_string buf "</tr>")
    rows;
  Buffer.add_string buf "</table>\n"

(* Inline-SVG throughput polyline: no external assets, fixed viewport. *)
let html_figure buf points =
  let points = downsample ~target:120 points in
  match points with
  | [] -> ()
  | _ ->
      let w = 640.0 and h = 140.0 and pad = 4.0 in
      let tmax =
        List.fold_left (fun acc (t, _) -> Float.max acc t) 1.0 points
      in
      let vmax =
        List.fold_left (fun acc (_, v) -> Float.max acc v) 1.0 points
      in
      let coords =
        List.map
          (fun (t, v) ->
            Printf.sprintf "%.1f,%.1f"
              (pad +. ((w -. (2.0 *. pad)) *. t /. tmax))
              (h -. pad -. ((h -. (2.0 *. pad)) *. v /. vmax)))
          points
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" \
            role=\"img\" aria-label=\"committed throughput\">\n\
            <rect width=\"%.0f\" height=\"%.0f\" fill=\"#fafafa\" \
            stroke=\"#e0e0e0\"/>\n\
            <polyline fill=\"none\" stroke=\"#2a6fdb\" stroke-width=\"1.5\" \
            points=\"%s\"/>\n\
            <text x=\"%.0f\" y=\"14\" font-size=\"11\" fill=\"#666\" \
            text-anchor=\"end\">peak %.0f txn/s · %.0f s</text>\n\
            </svg>\n"
           w h w h w h (String.concat " " coords) (w -. 8.0) vmax
           (tmax /. 1000.0))

let html_capture buf (c : Exp_trace.capture) =
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s</h2>\n" (escape c.Exp_trace.label));
  Buffer.add_string buf "<h3>Outcome</h3>\n";
  html_table buf ~header:[ "outcome"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (outcome_pairs c));
  Buffer.add_string buf "<h3>Committed throughput</h3>\n";
  html_figure buf (throughput_points c);
  let healthy = Obs.Slo.healthy (Obs.Slo.report c.Exp_trace.slo) in
  Buffer.add_string buf
    (Printf.sprintf
       "<h3>SLO (samya-slo/1): <span class=\"%s\">%s</span></h3>\n"
       (if healthy then "healthy" else "violated")
       (if healthy then "healthy" else "VIOLATED"));
  html_table buf
    ~header:[ "objective"; "target"; "windows"; "violations"; "overall" ]
    (slo_rows c);
  Buffer.add_string buf "<h3>Mechanism attribution</h3>\n";
  html_table buf ~header:[ "source"; "count" ]
    (List.map (fun (k, v) -> [ k; v ]) (attribution_pairs c));
  (match hot_top c with
  | [] -> ()
  | top ->
      Buffer.add_string buf "<h3>Hot keys (request-path sketch)</h3>\n";
      html_table buf ~header:[ "key"; "estimate" ]
        (List.map (fun (k, n) -> [ k; string_of_int n ]) top));
  let incidents = c.Exp_trace.incidents in
  Buffer.add_string buf
    (Printf.sprintf "<h3>Watchdog: %d incident%s</h3>\n"
       (List.length incidents)
       (if List.length incidents = 1 then "" else "s"));
  (match Obs.Watchdog.count_by_rule incidents with
  | [] ->
      Buffer.add_string buf "<p>No incidents: every rule stayed quiet.</p>\n"
  | pairs ->
      html_table buf ~header:[ "rule"; "count" ]
        (List.map (fun (r, n) -> [ r; string_of_int n ]) pairs);
      Buffer.add_string buf "<pre>";
      List.iteri
        (fun i incident ->
          if i < 20 then
            Buffer.add_string buf
              (escape (Obs.Watchdog.incident_line incident) ^ "\n"))
        incidents;
      if List.length incidents > 20 then
        Buffer.add_string buf
          (Printf.sprintf "(… %d more)\n" (List.length incidents - 20));
      Buffer.add_string buf "</pre>\n");
  match first_bundle c with
  | None -> ()
  | Some b ->
      Buffer.add_string buf "<h3>Black box (first incident)</h3>\n<pre>";
      Buffer.add_string buf
        (escape
           ("trigger: " ^ Obs.Watchdog.incident_line b.Obs.Watchdog.b_incident)
        ^ "\n");
      List.iter
        (fun ev ->
          Buffer.add_string buf
            ("  " ^ escape (Obs.Flight_recorder.line ev) ^ "\n"))
        b.Obs.Watchdog.b_events;
      (match b.Obs.Watchdog.b_hot with
      | [] -> ()
      | top ->
          Buffer.add_string buf
            (match b.Obs.Watchdog.b_hot_window with
            | Some start ->
                Printf.sprintf "hot keys in breached window (from %.0f s):"
                  (start /. 1000.0)
            | None -> "hot keys (cumulative):");
          List.iter
            (fun (k, n) ->
              Buffer.add_string buf (escape (Printf.sprintf "  %s %d" k n)))
            top;
          Buffer.add_char buf '\n');
      Buffer.add_string buf "</pre>\n"

let html meta captures =
  let buf = Buffer.create (1 lsl 15) in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n\
        <title>Samya run report: %s</title>\n<style>%s</style>\n</head>\n<body>\n"
       (escape meta.experiment) style);
  Buffer.add_string buf
    (Printf.sprintf "<h1>Samya run report: %s</h1>\n" (escape meta.experiment));
  Buffer.add_string buf
    (Printf.sprintf
       "<p class=\"meta\">Horizon: %s · seed %Ld · %d system%s</p>\n"
       (if meta.quick then "quick" else "full")
       meta.seed (List.length captures)
       (if List.length captures = 1 then "" else "s"));
  List.iter (html_capture buf) captures;
  Buffer.add_string buf "</body>\n</html>\n";
  Buffer.contents buf
