type experiment = {
  id : string;
  paper_artifact : string;
  description : string;
  run : Lab.context -> quick:bool -> Format.formatter -> unit;
}

let all =
  [
    {
      id = "fig3a";
      paper_artifact = "Figure 3a";
      description = "VM demand data: periodic daily/weekly pattern";
      run = (fun ctx ~quick:_ fmt -> Exp_prediction.run_fig3a ctx fmt);
    };
    {
      id = "table2a";
      paper_artifact = "Table 2a";
      description = "MAE of random walk / ARIMA / LSTM demand prediction";
      run = (fun ctx ~quick:_ fmt -> Exp_prediction.run_table2a ctx fmt);
    };
    {
      id = "table2b";
      paper_artifact = "Table 2b + Figure 3b";
      description = "latency percentiles and throughput of all five systems";
      run = (fun ctx ~quick fmt -> Exp_headline.run ctx ~quick fmt);
    };
    {
      id = "fig3b";
      paper_artifact = "Figure 3b (with Table 2b)";
      description = "alias of table2b: both come from the same runs";
      run = (fun ctx ~quick fmt -> Exp_headline.run ctx ~quick fmt);
    };
    {
      id = "fig3c";
      paper_artifact = "Figure 3c";
      description = "throughput as regions crash one by one";
      run = (fun ctx ~quick fmt -> Exp_failures.run_crash ctx ~quick fmt);
    };
    {
      id = "fig3d";
      paper_artifact = "Figure 3d";
      description = "throughput during a 3-2 network partition";
      run = (fun ctx ~quick fmt -> Exp_failures.run_partition ctx ~quick fmt);
    };
    {
      id = "fig3e";
      paper_artifact = "Figure 3e";
      description = "no-constraint / no-redistribution ablation";
      run = (fun ctx ~quick fmt -> Exp_ablations.run_constraint_ablation ctx ~quick fmt);
    };
    {
      id = "fig3f";
      paper_artifact = "Figure 3f";
      description = "proactive vs reactive redistributions (prediction ablation)";
      run = (fun ctx ~quick fmt -> Exp_ablations.run_prediction_ablation ctx ~quick fmt);
    };
    {
      id = "fig3g";
      paper_artifact = "Figure 3g";
      description = "scalability from 5 to 20 sites";
      run = (fun ctx ~quick fmt -> Exp_scalability.run ctx ~quick fmt);
    };
    {
      id = "fig3h";
      paper_artifact = "Figure 3h";
      description = "read-only transaction ratio sweep vs MultiPaxSys";
      run = (fun ctx ~quick fmt -> Exp_readmix.run ctx ~quick fmt);
    };
    {
      id = "ext1";
      paper_artifact = "§5.9(i)";
      description = "varying the maximum limit M_e";
      run = (fun ctx ~quick fmt -> Exp_extended.run_max_limit ctx ~quick fmt);
    };
    {
      id = "ext2";
      paper_artifact = "§5.9(ii)";
      description = "varying the request arrival interval";
      run = (fun ctx ~quick fmt -> Exp_extended.run_arrival_rate ctx ~quick fmt);
    };
    {
      id = "chaos";
      paper_artifact = "robustness ext.";
      description = "multi-seed nemesis soak with crash-amnesia recovery + auditor";
      run = (fun ctx ~quick fmt -> Exp_chaos.run ctx ~quick fmt);
    };
    {
      id = "gateway";
      paper_artifact = "multi-entity ext.";
      description = "million-key gateway fleet: Zipfian load over batched Avantan";
      run = (fun ctx ~quick fmt -> Exp_gateway.run ctx ~quick fmt);
    };
    {
      id = "retrystorm";
      paper_artifact = "robustness ext.";
      description = "flash-sale overload: retry policies vs deadline/admission stack";
      run = (fun ctx ~quick fmt -> Exp_retrystorm.run ctx ~quick fmt);
    };
    {
      id = "contention";
      paper_artifact = "controller ext.";
      description = "skew-ramp contention: static mechanisms vs adaptive controller";
      run = (fun ctx ~quick fmt -> Exp_contention.run ctx ~quick fmt);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids () = List.map (fun e -> e.id) all

let unknown_message id =
  Printf.sprintf "unknown experiment %S; known: %s" id (String.concat ", " (ids ()))

let validate requested =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest -> (
        match find id with
        | Some experiment -> collect (experiment :: acc) rest
        | None -> Error (unknown_message id))
  in
  collect [] requested

let run_by_id ctx ~quick fmt id =
  match find id with
  | Some experiment ->
      experiment.run ctx ~quick fmt;
      Ok ()
  | None -> Error (unknown_message id)

type rendered = { experiment : experiment; output : string; seconds : float }

let run_many ?(time = fun () -> 0.0) ctx ~quick experiments =
  Pool.map
    (fun experiment ->
      let buffer = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buffer in
      let t0 = time () in
      experiment.run ctx ~quick fmt;
      Format.pp_print_flush fmt ();
      { experiment; output = Buffer.contents buffer; seconds = time () -. t0 })
    experiments
