(* The gateway-fleet scenario — the multi-entity headline.

   One Samya cluster acts as the token registry of an API-gateway fleet:
   a million rate-limiter keys bulk-registered cold, Zipfian demand at
   100k requests per second of offered load, per-key quotas sized by
   Little's law from each key's expected in-flight tokens (rate x hold
   time, with headroom). The hot head of the popularity curve heats into
   full per-entity machines and redistributes through the site-level
   batched Avantan instances; the cold tail is served from the compact
   core ledgers without ever materialising protocol state.

   The capture path mirrors Exp_trace: the same driver, the same online
   SLO monitor, plus the per-key attribution the multi-entity driver
   collects ([track_entities]). Quick mode is the CI smoke: the same
   shape at 1/50 the keys and 1/20 the rate. *)

type scale = {
  keys : int;
  rate_per_s : float;
  duration_ms : float;
  hold_ms : float;  (* rate-limit window: grant-driven release lifetime *)
  batch : int;  (* Config.protocol_batch *)
  shards : int;  (* Config.entity_shards *)
}

let scale ~quick =
  if quick then
    {
      keys = 20_000;
      rate_per_s = 5_000.0;
      duration_ms = 10_000.0;
      hold_ms = 1_000.0;
      batch = 128;
      shards = 64;
    }
  else
    {
      keys = 1_000_000;
      rate_per_s = 100_000.0;
      duration_ms = 20_000.0;
      hold_ms = 1_000.0;
      batch = 256;
      shards = 256;
    }

let n_sites = 5

let key_name r = Printf.sprintf "key%07d" r

let key_home r = r mod n_sites

let read_ratio = 0.05

(* Per-key quota from Little's law: the expected number of in-flight
   tokens of rank r is (acquire rate of r) x (hold time), padded with 3x
   headroom — shares start split evenly across sites while 80% of a key's
   traffic hits its home site, so the home share must absorb most of the
   key's in-flight demand until redistribution catches up. The floor
   gives every site of a cold key a serviceable local share. *)
let quotas ~scale zipf =
  Array.init scale.keys (fun r ->
      let expected =
        scale.rate_per_s
        *. Trace.Zipf.probability zipf r
        *. (1.0 -. read_ratio)
        *. (scale.hold_ms /. 1000.0)
      in
      max (4 * n_sites) (int_of_float (ceil (5.0 *. expected))))

let config ~scale =
  {
    (Exp_common.samya_config Samya.Config.Majority) with
    (* The fleet runs reactive-only: one shared forecaster across 10^6
       keys would predict none of them well, and prediction timers per
       hot entity are exactly the per-entity overhead this scenario is
       designed to avoid. *)
    Samya.Config.prediction_enabled = false;
    (* A token-bucket check is microseconds of CPU, not the 150 us the
       VM-allocation experiments model: at 100k req/s (plus the release
       per grant) five sites would otherwise saturate their serial CPUs
       at 1/0.15 ms x 5 = 33k req/s and the fleet would measure its own
       queue, not Samya. *)
    local_processing_ms = 0.01;
    (* Hot keys run home-skewed and deficit-driven: a short cooldown lets
       a key's share chase its demand instead of parking requests for the
       default 2 s between redistributions. *)
    redistribution_cooldown_ms = 500.0;
    protocol_batch = scale.batch;
    entity_shards = scale.shards;
    entity_capacity = scale.keys;
  }

let build ?engine_jobs ~scale ~quotas () =
  let hooks = Facade.samya_hooks () in
  let engine_jobs =
    match engine_jobs with Some n -> n | None -> Pool.engine_jobs ()
  in
  let regions = Exp_common.client_regions () in
  let cluster =
    Samya.Cluster.create ~seed:Exp_common.seed ~engine_jobs
      ~config:(config ~scale) ~regions
      ~on_protocol_event:(Facade.protocol_event_hook hooks)
      ~obs:(Facade.obs_port hooks) ()
  in
  Samya.Cluster.register_entities cluster
    (List.init scale.keys (fun r -> (key_name r, quotas.(r))));
  let t_system =
    Facade.of_samya_cluster ~name:"Samya gateway fleet" ~hooks ~regions
      ~entity:(key_name 0) cluster
  in
  (cluster, t_system)

let requests ~scale zipf =
  let rng = Des.Rng.stream Exp_common.seed 1009 in
  Trace.Workload.gateway ~rng ~zipf ~key_name ~key_home ~n_clients:n_sites
    ~rate_per_s:scale.rate_per_s ~duration_ms:scale.duration_ms ~read_ratio ()

type capture = {
  scale : scale;
  quotas : int array;
  cluster : Samya.Cluster.t;
  offered : int;  (* requests in the stream *)
  sink : Obs.Sink.t option;
  slo : Obs.Slo.t;
  result : Driver.result;
  hot : int;
  stats : Systems.stats;
  flight : Obs.Flight_recorder.t;  (* always-on black box *)
  hotkeys : Obs.Heavy_hitters.Windowed.w;
      (* request-path Misra-Gries sketch: gateway-scale hot-key telemetry
         without per-key driver attribution *)
  incidents : Obs.Watchdog.incident list;
}

let capture ?engine_jobs ?(observe = false) ~quick () =
  let scale = scale ~quick in
  let zipf = Trace.Zipf.create scale.keys in
  let quotas = quotas ~scale zipf in
  let cluster, t_system = build ?engine_jobs ~scale ~quotas () in
  let sink =
    if observe then begin
      let sink =
        Obs.Sink.create ~now:(fun () -> Des.Engine.now t_system.Systems.engine) ()
      in
      t_system.Systems.subscribe sink;
      Some sink
    end
    else None
  in
  (* The always-on incident layer: at a million keys the per-key driver
     attribution is the expensive path — the sketch tracks the hot head
     in O(k) from the request path itself. *)
  let flight = Obs.Flight_recorder.create () in
  let hotkeys = Obs.Heavy_hitters.Windowed.create ~k:16 ~window_ms:2_000.0 () in
  t_system.Systems.arm { Obs.Flight_recorder.recorder = flight; hot = Some hotkeys };
  (* 2 s tumbling windows: the cold-start transient (shares chasing the
     home-skewed demand) lands in the first window or two and the
     steady-state windows show the converged fleet. *)
  let slo = Obs.Slo.create ~window_ms:2_000.0 () in
  let requests = requests ~scale zipf in
  let clients = Exp_common.client_regions () in
  let spec =
    {
      (Driver.default_spec ~client_regions:clients ~requests
         ~duration_ms:scale.duration_ms)
      with
      drain_ms = 10_000.0;
      window_ms = 1_000.0;
      grant_driven_release_ms = Some scale.hold_ms;
      obs = sink;
      slo = Some slo;
      flight = Some flight;
      track_entities = true;
    }
  in
  let result = Driver.run ~t_system spec in
  {
    scale;
    quotas;
    cluster;
    offered = Array.length requests;
    sink;
    slo;
    result;
    hot = Samya.Cluster.hot_entities cluster;
    stats = t_system.Systems.stats ();
    flight;
    hotkeys;
    incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events flight);
  }

(* Token conservation, key by key: Equation 1 against each key's own
   quota. Run after the drain, when the grant-driven releases have come
   home and the fleet is quiescent. *)
let audit c =
  let violations = ref [] and bad = ref 0 in
  Array.iteri
    (fun r quota ->
      match
        Samya.Cluster.check_invariant c.cluster ~entity:(key_name r)
          ~maximum:quota
      with
      | Ok () -> ()
      | Error reason ->
          incr bad;
          if List.length !violations < 5 then
            violations := (key_name r, reason) :: !violations)
    c.quotas;
  (Array.length c.quotas - !bad, List.rev !violations)

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let run _ctx ~quick fmt =
  let c = capture ~quick () in
  let conserved, violations = audit c in
  Format.fprintf fmt
    "@.== gateway fleet: %d keys, %.0f req/s offered (Zipf 0.99, %.0f s) ==@."
    c.scale.keys c.scale.rate_per_s
    (c.scale.duration_ms /. 1000.0);
  let r = c.result in
  let counted = r.Driver.committed + r.Driver.rejected + r.Driver.unavailable in
  Report.kv fmt
    [
      ("registered keys", string_of_int (Samya.Cluster.entity_count c.cluster));
      ( "hot keys after run",
        Printf.sprintf "%d (%s of fleet, summed over %d sites)" c.hot
          (pct (float_of_int c.hot /. float_of_int (n_sites * c.scale.keys)))
          n_sites );
      ("protocol batch", string_of_int c.scale.batch);
      ("entity shards/site", string_of_int c.scale.shards);
      ("offered requests", string_of_int c.offered);
      ( "counted replies",
        Printf.sprintf "%d (%d no-reply)" counted r.Driver.no_reply );
      ("redistributions", string_of_int c.stats.Systems.redistributions);
      ("messages sent", string_of_int c.stats.Systems.messages_sent);
    ];
  Report.table fmt ~title:"gateway fleet: outcomes and latency"
    ~header:[ "committed"; "rejected"; "unavailable"; "avg tps"; "p50"; "p95"; "p99" ]
    ~rows:
      [
        [
          string_of_int r.Driver.committed;
          string_of_int r.Driver.rejected;
          string_of_int r.Driver.unavailable;
          Report.f1 (Driver.average_tps r);
          Report.ms (Driver.percentile r 50.0);
          Report.ms (Driver.percentile r 95.0);
          Report.ms (Driver.percentile r 99.0);
        ];
      ];
  (* The figure: committed throughput over the run, 1 s windows. *)
  Report.series fmt ~title:"gateway fleet: committed throughput (figure)"
    ~unit_label:"txn/s"
    [
      ( "Samya gateway fleet",
        Stats.Throughput.series r.Driver.throughput
          ~until_ms:(c.scale.duration_ms -. 1.0) () );
    ];
  (* Per-key attribution: the hottest keys by committed traffic. *)
  let top =
    List.stable_sort
      (fun (_, (a : Driver.entity_stats)) (_, b) ->
        Int.compare b.Driver.e_committed a.Driver.e_committed)
      r.Driver.by_entity
    |> List.filteri (fun i _ -> i < 10)
  in
  Report.table fmt ~title:"hottest keys (per-entity attribution)"
    ~header:[ "key"; "quota"; "committed"; "rejected"; "mean lat"; "max lat" ]
    ~rows:
      (List.map
         (fun (key, (e : Driver.entity_stats)) ->
           let rank = int_of_string (String.sub key 3 (String.length key - 3)) in
           [
             key;
             string_of_int c.quotas.(rank);
             string_of_int e.Driver.e_committed;
             string_of_int e.Driver.e_rejected;
             (if e.Driver.e_committed = 0 then "-"
              else
                Report.ms
                  (e.Driver.e_latency_sum_ms /. float_of_int e.Driver.e_committed));
             Report.ms e.Driver.e_latency_max_ms;
           ])
         top);
  (* The same hot head from the request-path sketch: what the incident
     layer sees in O(k) space, cross-checked against the exact per-key
     driver attribution above. The sketch counts every submitted request
     (acquires, releases, reads, before shedding), so estimates sit above
     the committed column; the Misra-Gries bound guarantees
     estimate <= true <= estimate + err. *)
  let sketch = Obs.Heavy_hitters.Windowed.cumulative c.hotkeys in
  Report.table fmt
    ~title:"hot-key telemetry (request-path Misra-Gries sketch, k=16)"
    ~header:[ "key"; "estimate"; "+err"; "committed (exact)" ]
    ~rows:
      (List.map
         (fun (key, est) ->
           [
             key;
             string_of_int est;
             string_of_int (Obs.Heavy_hitters.error sketch);
             (match List.assoc_opt key r.Driver.by_entity with
             | Some e -> string_of_int e.Driver.e_committed
             | None -> "-");
           ])
         (Obs.Heavy_hitters.top ~n:8 sketch));
  Format.fprintf fmt
    "flight recorder: %d events recorded (%d dropped), watchdog incidents: %d@."
    (Obs.Flight_recorder.recorded c.flight)
    (Obs.Flight_recorder.dropped c.flight)
    (List.length c.incidents);
  (* The samya-slo/1 report (rendered; `slo gateway --out` writes the JSON). *)
  let lines = Obs.Slo.report c.slo in
  Report.table fmt
    ~title:
      (if Obs.Slo.healthy lines then "SLO (samya-slo/1): healthy"
       else "SLO (samya-slo/1): VIOLATED")
    ~header:[ "objective"; "target"; "windows"; "violations"; "overall" ]
    ~rows:
      (List.map
         (fun (l : Obs.Slo.report_line) ->
           let value v =
             if Float.is_nan v then "-"
             else if l.Obs.Slo.kind = "latency" then Report.ms v
             else pct v
           in
           [
             l.Obs.Slo.name;
             (if l.Obs.Slo.kind = "latency" then Report.ms l.Obs.Slo.target
              else pct l.Obs.Slo.target);
             string_of_int l.Obs.Slo.windows;
             string_of_int l.Obs.Slo.violations;
             value l.Obs.Slo.overall;
           ])
         lines);
  (* Conservation, key by key. *)
  if violations = [] then
    Format.fprintf fmt "token conservation: all %d keys audited OK@." conserved
  else begin
    Format.fprintf fmt "token conservation: %d keys VIOLATED (of %d):@."
      (Array.length c.quotas - conserved)
      (Array.length c.quotas);
    List.iter
      (fun (key, reason) -> Format.fprintf fmt "  %s: %s@." key reason)
      violations
  end
