(** Trace capture: re-runs an experiment's systems with an observability
    sink subscribed to each facade (DES timers, network hops, Avantan
    instances, request spans, the causal request log) and an online SLO
    monitor fed by the driver, then exports Chrome [trace_event] JSON,
    the flat metrics JSON, the [samya-slo/1] report and the critical-path
    explanation.

    Determinism: each system runs on its own engine with its own sink, and
    captures are assembled in builder-list order, so every export is
    byte-identical for a given seed regardless of [--jobs]. *)

type capture = {
  label : string;
  sink : Obs.Sink.t;
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  flight : Obs.Flight_recorder.t;  (** the always-on black box *)
  hot : Obs.Heavy_hitters.Windowed.w;  (** request-path hot-key sketch *)
  incidents : Obs.Watchdog.incident list;
      (** watchdog verdict over the recorder dump, default rules *)
}

val experiments : string list
(** Traceable experiment ids: "headline" (plus its registry aliases),
    "prediction" (the fig3f prediction-on/off Samya pair), "gateway",
    "retrystorm" and "contention" (each capturing its headline arm). *)

val run :
  Lab.context -> quick:bool -> experiment:string -> (capture list, string) result
(** Runs every system of the experiment under tracing (shortened horizon:
    100 s quick, 180 s full) and returns the captures in fixed order. *)

val trace_json : capture list -> string
(** One Chrome-loadable trace; each system is a process, sites and
    clients are its threads, WAN deliveries carry flow arrows. *)

val metrics_json : ?meta:(string * string) list -> capture list -> string

val slo_json : ?meta:(string * string) list -> capture list -> string
(** The [samya-slo/1] document: one entry per system. *)

val summary : Format.formatter -> capture list -> unit

val breakdowns : capture -> Obs.Critical_path.breakdown list
(** Per-request latency attributions from the capture's causal log. *)

val mechanism_bucket : string -> string
(** Folds a critical-path component name into the token-movement
    mechanism (or transport/serving layer) that produced the time:
    "borrow", "redistribute", "controller", "local", "client wan",
    "replication" or "other". *)

val explain :
  Format.formatter -> ?by_mechanism:bool -> slowest:int -> capture list -> unit
(** Per system: traced/completed counts, the attributed fraction of wall
    latency, the aggregate where-the-time-went table and the [slowest]
    requests with their critical paths. [by_mechanism] (default false)
    adds the same aggregate folded through {!mechanism_bucket} — the
    [explain --mechanism] view. Deterministic and byte-identical at any
    [--jobs]. *)

val slo_summary : Format.formatter -> capture list -> unit
