(** Trace capture: re-runs an experiment's systems with an observability
    sink subscribed to each facade (DES timers, network hops, Avantan
    instances, request spans) and exports Chrome [trace_event] JSON plus
    the flat metrics JSON.

    Determinism: each system runs on its own engine with its own sink, and
    captures are assembled in builder-list order, so the exported JSON is
    byte-identical for a given seed regardless of [--jobs]. *)

type capture = {
  label : string;
  sink : Obs.Sink.t;
  result : Driver.result;
  stats : Systems.stats;
}

val experiments : string list
(** Traceable experiment ids ("headline" plus its registry aliases). *)

val run :
  Lab.context -> quick:bool -> experiment:string -> (capture list, string) result
(** Runs every system of the experiment under tracing (shortened horizon:
    100 s quick, 180 s full) and returns the captures in fixed order. *)

val trace_json : capture list -> string
(** One Chrome-loadable trace; each system is a process, sites and
    clients are its threads. *)

val metrics_json : ?meta:(string * string) list -> capture list -> string

val summary : Format.formatter -> capture list -> unit
