let entity = Exp_common.entity
let maximum = Exp_common.maximum
let seed = Exp_common.seed

let regions_for n_sites =
  let base = Exp_common.client_regions () in
  Array.init n_sites (fun i -> base.(i mod Array.length base))

let run ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:10.0 ~quick_min:4.0 in
  let workers_per_client = 16 in
  let site_counts = [ 5; 10; 15; 20 ] in
  Format.fprintf fmt
    "@.== Fig 3g: scalability, 5 to 20 sites (closed loop, %d workers/site, %.0f min each) ==@."
    workers_per_client
    (Report.minutes_of_ms duration_ms);
  let forecaster = Lab.runtime_forecaster ctx in
  let measure variant n_sites =
    let regions = regions_for n_sites in
    (* More sites bring more clients (full request intensity each) against
       the same global limit; their net footprints shrink proportionally so
       aggregate usage stays comparable to M_e. *)
    let requests =
      Lab.workload ctx ~client_regions:regions ~duration_ms:(duration_ms *. 4.0)
        ~usage_scale:(5.0 /. float_of_int n_sites)
        ~start_hours:6.0 ~seed ()
    in
    let t_system =
      Systems.samya ~seed
        ~config:(Exp_common.samya_config variant)
        ~regions ~forecaster ~entity ~maximum ()
    in
    let result =
      Driver.run_closed ~t_system ~client_regions:regions ~requests ~duration_ms
        ~workers_per_client ~window_ms:(Exp_common.window_ms ~quick)
    in
    ( Driver.average_tps result,
      Stats.Sample_set.mean result.Driver.latencies,
      (t_system.Systems.stats ()).Systems.redistributions,
      Exp_common.pp_invariant (t_system.Systems.invariant ~maximum) )
  in
  let variants =
    [ ("Avantan[(n+1)/2]", Samya.Config.Majority); ("Avantan[*]", Samya.Config.Star) ]
  in
  (* One flat fan-out over every (variant, sites) cell: under --jobs this
     fills eight slots at once instead of two dependent rounds of four.
     Cells are independent, so the merged map renders byte-identically. *)
  let measured =
    Pool.map
      (fun (name, variant, n) ->
        let tps, latency, redist, invariant = measure variant n in
        (name, n, tps, latency, redist, invariant))
      (List.concat_map
         (fun (name, variant) -> List.map (fun n -> (name, variant, n)) site_counts)
         variants)
  in
  let print_variant name =
    let measured =
      List.filter_map
        (fun (cell_name, n, tps, latency, redist, invariant) ->
          if String.equal cell_name name then Some (n, tps, latency, redist, invariant)
          else None)
        measured
    in
    Report.table fmt ~title:(Printf.sprintf "Fig 3g: %s" name)
      ~header:
        [ "sites"; "avg throughput (txn/s)"; "avg latency"; "redistributions"; "invariant" ]
      ~rows:
        (List.map
           (fun (n, tps, latency, redist, invariant) ->
             [
               string_of_int n;
               Report.f1 tps;
               Report.ms latency;
               string_of_int redist;
               invariant;
             ])
           measured);
    let tps_at n = match List.find (fun (m, _, _, _, _) -> m = n) measured with
      | _, tps, _, _, _ -> tps
    in
    Report.kv fmt
      [
        ( name ^ " throughput 20 vs 5 sites",
          Report.f2 (tps_at 20 /. tps_at 5) ^ "x  (paper: roughly linear, ~4x)" );
      ]
  in
  List.iter (fun (name, _) -> print_variant name) variants
