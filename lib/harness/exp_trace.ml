type capture = {
  label : string;
  sink : Obs.Sink.t;
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  flight : Obs.Flight_recorder.t;
  hot : Obs.Heavy_hitters.Windowed.w;
  incidents : Obs.Watchdog.incident list;
}

(* Accept the registry spellings of the headline run too. *)
let experiments =
  [
    "headline"; "table2b"; "fig3b"; "prediction"; "gateway"; "retrystorm";
    "contention";
  ]

(* The fig3f pair — prediction on vs off — captured through the same
   facade/obs path as the headline systems, so the ablation is explainable
   and SLO-monitored like everything else.

   Trace capture pins [engine_jobs] to 0: full observability forces
   sequential window drains on a sharded system anyway, so sharding buys
   nothing here — pinning keeps trace/explain/SLO output byte-identical at
   every --engine-jobs setting. *)
let prediction_builders ctx : (string * (unit -> Systems.facade)) list =
  let maj = Exp_common.samya_config Samya.Config.Majority in
  let forecaster = Lab.runtime_forecaster ctx in
  let samya ~name config () =
    Systems.samya ~engine_jobs:0 ~seed:Exp_common.seed ~name ~config
      ~regions:(Exp_common.client_regions ())
      ~forecaster ~entity:Exp_common.entity ~maximum:Exp_common.maximum ()
  in
  [
    ("Samya w/ prediction", samya ~name:"Samya w/ prediction" maj);
    ( "Samya w/o prediction",
      samya ~name:"Samya w/o prediction"
        { maj with Samya.Config.prediction_enabled = false } );
  ]

let capture ctx ~quick ~builders =
  (* Tracing is for inspecting behaviour, not reproducing the paper's
     numbers: a shorter horizon keeps the trace loadable (every message
     hop and protocol instance becomes a span). *)
  (* The first proactive redistribution trigger fires around 90 s of
     virtual time, so even the quick horizon runs past it. *)
  let duration_ms = if quick then 100_000.0 else 180_000.0 in
  let clients = Exp_common.client_regions () in
  (* Start at the daily peak with an inflated usage footprint (the
     fig3e/fig3c setup) so the short window still shows redistributions —
     otherwise the protocol lanes of the trace would be empty. *)
  let requests =
    Lab.workload ctx ~client_regions:clients ~duration_ms ~usage_scale:2.2
      ~start_hours:6.0 ~seed:Exp_common.seed ()
  in
  Pool.map
    (fun (label, build) ->
      let t_system = build () in
      let sink =
        Obs.Sink.create ~now:(fun () -> Des.Engine.now t_system.Systems.engine) ()
      in
      t_system.Systems.subscribe sink;
      (* The always-on incident layer rides along, so `report` renders
         the black box for every traceable system (no-op on baselines). *)
      let flight = Obs.Flight_recorder.create () in
      let hot = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:10_000.0 () in
      t_system.Systems.arm { Obs.Flight_recorder.recorder = flight; hot = Some hot };
      let slo = Obs.Slo.create () in
      let spec =
        {
          (Driver.default_spec ~client_regions:clients ~requests ~duration_ms) with
          drain_ms = 10_000.0;
          obs = Some sink;
          slo = Some slo;
          flight = Some flight;
        }
      in
      let result = Driver.run ~t_system spec in
      {
        label;
        sink;
        slo;
        result;
        stats = t_system.Systems.stats ();
        flight;
        hot;
        incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events flight);
      })
    builders

let run ctx ~quick ~experiment =
  if experiment = "gateway" then begin
    (* The multi-entity fleet, captured through the same obs/SLO path.
       [engine_jobs] pinned like the other trace captures (see above). *)
    let g = Exp_gateway.capture ~engine_jobs:0 ~observe:true ~quick () in
    Ok
      [
        {
          label = "Samya gateway fleet";
          sink = Option.get g.Exp_gateway.sink;
          slo = g.Exp_gateway.slo;
          result = g.Exp_gateway.result;
          stats = g.Exp_gateway.stats;
          flight = g.Exp_gateway.flight;
          hot = g.Exp_gateway.hotkeys;
          incidents = g.Exp_gateway.incidents;
        };
      ]
  end
  else if experiment = "retrystorm" then begin
    (* The headline resilience arm (backoff clients + the full
       deadline/admission/breaker stack): retries appear in the trace as
       linked attempts on one root and sheds as driver.shed counters. *)
    let arm =
      List.find
        (fun a -> a.Exp_retrystorm.a_id = "admission")
        Exp_retrystorm.arms
    in
    let c = Exp_retrystorm.capture ~engine_jobs:0 ~observe:true ~quick ~arm () in
    Ok
      [
        {
          label = "Samya flash sale (backoff+admission)";
          sink = Option.get c.Exp_retrystorm.sink;
          slo = c.Exp_retrystorm.slo;
          result = c.Exp_retrystorm.result;
          stats = c.Exp_retrystorm.stats;
          flight = c.Exp_retrystorm.flight;
          hot = c.Exp_retrystorm.hot;
          incidents = c.Exp_retrystorm.incidents;
        };
      ]
  end
  else if experiment = "contention" then begin
    (* The adaptive arm of the skew ramp: mechanism switches appear as
       zero-width mech.switch phases, borrow conversations as mech.borrow
       phases on the requests they parked. *)
    let arm =
      List.find
        (fun a -> a.Exp_contention.a_id = "adaptive")
        Exp_contention.arms
    in
    let c = Exp_contention.capture ~engine_jobs:0 ~observe:true ~quick ~arm () in
    Ok
      [
        {
          label = "Samya skew ramp (adaptive)";
          sink = Option.get c.Exp_contention.sink;
          slo = c.Exp_contention.slo;
          result = c.Exp_contention.result;
          stats = c.Exp_contention.stats;
          flight = c.Exp_contention.flight;
          hot = c.Exp_contention.hot;
          incidents = c.Exp_contention.incidents;
        };
      ]
  end
  else if experiment = "prediction" then
    Ok (capture ctx ~quick ~builders:(prediction_builders ctx))
  else if List.mem experiment experiments then
    Ok (capture ctx ~quick ~builders:(Exp_headline.builders ~engine_jobs:0 ctx))
  else
    Error
      (Printf.sprintf "unknown traceable experiment %S; known: %s" experiment
         (String.concat ", " experiments))

let trace_json captures =
  let buf = Buffer.create (1 lsl 16) in
  Obs.Export.trace_json buf
    (List.map (fun c -> (c.label, c.sink.Obs.Sink.spans)) captures);
  Buffer.contents buf

let metrics_json ?meta captures =
  let buf = Buffer.create (1 lsl 14) in
  Obs.Export.metrics_json buf ?meta
    (List.map (fun c -> (c.label, c.sink.Obs.Sink.metrics)) captures);
  Buffer.contents buf

let slo_json ?meta captures =
  let buf = Buffer.create (1 lsl 12) in
  Obs.Export.slo_json buf ?meta
    (List.map
       (fun c -> (c.label, Obs.Slo.window_ms c.slo, Obs.Slo.report c.slo))
       captures);
  Buffer.contents buf

let summary fmt captures =
  Report.table fmt ~title:"trace capture"
    ~header:[ "system"; "committed"; "spans+instants"; "messages" ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.label;
             string_of_int c.result.Driver.committed;
             string_of_int (Obs.Span.event_count c.sink.Obs.Sink.spans);
             string_of_int c.stats.Systems.messages_sent;
           ])
         captures)

(* ------------------------------------------------------------------ *)
(* Critical-path explanation                                            *)

let breakdowns c = Obs.Critical_path.analyze (Obs.Causal.events c.sink.Obs.Sink.causal)

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

(* Folds critical-path component names into the token-movement mechanism
   (or transport/serving layer) that produced the time — the
   [explain --mechanism] view. Controller switches are zero-width
   markers, so "controller" is attribution of the switch instant, not a
   cost pool. *)
let mechanism_bucket comp =
  let has_prefix p = String.starts_with ~prefix:p comp in
  if has_prefix "protocol.mech.switch" then "controller"
  else if comp = "queue.borrow" || has_prefix "protocol.mech.borrow" then
    "borrow"
  else if comp = "queue.redistribution" || has_prefix "protocol." then
    "redistribute"
  else if comp = "queue.cpu" || comp = "local.service" then "local"
  else if comp = "wan.client" then "client wan"
  else if has_prefix "wan." then "replication"
  else "other"

let explain fmt ?(by_mechanism = false) ~slowest captures =
  List.iter
    (fun c ->
      let events = Obs.Causal.events c.sink.Obs.Sink.causal in
      let bds = Obs.Critical_path.analyze events in
      let n = List.length bds in
      Format.fprintf fmt "@.== %s ==@." c.label;
      if n = 0 then Format.fprintf fmt "no completed traced requests@."
      else begin
        let fractions = List.map Obs.Critical_path.attributed_fraction bds in
        let min_f = List.fold_left Float.min 1.0 fractions in
        let mean_f = List.fold_left ( +. ) 0.0 fractions /. float_of_int n in
        Report.kv fmt
          [
            ( "traced requests",
              Printf.sprintf "%d submitted, %d completed"
                (Obs.Critical_path.submitted_count events)
                n );
            ( "latency attributed",
              Printf.sprintf "mean %s, min %s of wall time" (pct mean_f) (pct min_f)
            );
          ];
        (* Aggregate attribution across every completed request. *)
        let totals : (string, float) Hashtbl.t = Hashtbl.create 16 in
        let wall_total = ref 0.0 in
        List.iter
          (fun (b : Obs.Critical_path.breakdown) ->
            wall_total := !wall_total +. b.Obs.Critical_path.wall_ms;
            List.iter
              (fun (comp : Obs.Critical_path.component) ->
                let v =
                  Option.value
                    (Hashtbl.find_opt totals comp.Obs.Critical_path.comp)
                    ~default:0.0
                in
                Hashtbl.replace totals comp.Obs.Critical_path.comp
                  (v +. comp.Obs.Critical_path.ms))
              b.Obs.Critical_path.components)
          bds;
        let rows =
          Hashtbl.fold (fun comp ms acc -> (comp, ms) :: acc) totals []
          |> List.sort (fun (ca, ma) (cb, mb) ->
                 let c = Float.compare mb ma in
                 if c <> 0 then c else String.compare ca cb)
          |> List.map (fun (comp, ms) ->
                 [
                   comp;
                   Report.ms ms;
                   (if !wall_total > 0.0 then pct (ms /. !wall_total) else "-");
                 ])
        in
        Report.table fmt ~title:"where the time went (all completed requests)"
          ~header:[ "component"; "total"; "share of wall" ]
          ~rows;
        if by_mechanism then begin
          let buckets : (string, float) Hashtbl.t = Hashtbl.create 8 in
          Hashtbl.iter
            (fun comp ms ->
              let b = mechanism_bucket comp in
              Hashtbl.replace buckets b
                (Option.value (Hashtbl.find_opt buckets b) ~default:0.0 +. ms))
            totals;
          Report.table fmt ~title:"where the time went, by mechanism"
            ~header:[ "mechanism"; "total"; "share of wall" ]
            ~rows:
              (Hashtbl.fold (fun b ms acc -> (b, ms) :: acc) buckets []
              |> List.sort (fun (ba, ma) (bb, mb) ->
                     let c = Float.compare mb ma in
                     if c <> 0 then c else String.compare ba bb)
              |> List.map (fun (b, ms) ->
                     [
                       b;
                       Report.ms ms;
                       (if !wall_total > 0.0 then pct (ms /. !wall_total)
                        else "-");
                     ]))
        end;
        let top = Obs.Critical_path.slowest slowest bds in
        Report.table fmt
          ~title:(Printf.sprintf "slowest %d requests" (List.length top))
          ~header:[ "trace"; "kind"; "outcome"; "wall"; "critical path" ]
          ~rows:
            (List.map
               (fun (b : Obs.Critical_path.breakdown) ->
                 let path =
                   b.Obs.Critical_path.components
                   |> List.map (fun (comp : Obs.Critical_path.component) ->
                          Printf.sprintf "%s %s" comp.Obs.Critical_path.comp
                            (Report.ms comp.Obs.Critical_path.ms))
                   |> String.concat ", "
                 in
                 [
                   string_of_int b.Obs.Critical_path.trace;
                   (* entity-named requests (the gateway fleet) show their
                      key; the bound-entity experiments stay as before *)
                   (if b.Obs.Critical_path.entity = "" then
                      b.Obs.Critical_path.kind
                    else
                      b.Obs.Critical_path.kind ^ "@" ^ b.Obs.Critical_path.entity);
                   b.Obs.Critical_path.outcome;
                   Report.ms b.Obs.Critical_path.wall_ms;
                   path;
                 ])
               top)
      end)
    captures

let slo_summary fmt captures =
  List.iter
    (fun c ->
      let lines = Obs.Slo.report c.slo in
      Format.fprintf fmt "@.== %s (window %.0f s) ==@." c.label
        (Obs.Slo.window_ms c.slo /. 1000.0);
      Report.table fmt
        ~title:
          (if Obs.Slo.healthy lines then "SLO: healthy"
           else "SLO: VIOLATED")
        ~header:[ "objective"; "target"; "windows"; "violations"; "worst"; "overall" ]
        ~rows:
          (List.map
             (fun (l : Obs.Slo.report_line) ->
               let value v =
                 if Float.is_nan v then "-"
                 else if l.Obs.Slo.kind = "latency" then Report.ms v
                 else pct v
               in
               [
                 l.Obs.Slo.name;
                 (if l.Obs.Slo.kind = "latency" then Report.ms l.Obs.Slo.target
                  else pct l.Obs.Slo.target);
                 string_of_int l.Obs.Slo.windows;
                 string_of_int l.Obs.Slo.violations;
                 value l.Obs.Slo.worst;
                 value l.Obs.Slo.overall;
               ])
             lines))
    captures
