type capture = {
  label : string;
  sink : Obs.Sink.t;
  result : Driver.result;
  stats : Systems.stats;
}

(* Accept the registry spellings of the headline run too. *)
let experiments = [ "headline"; "table2b"; "fig3b" ]

let capture_headline ctx ~quick =
  (* Tracing is for inspecting behaviour, not reproducing the paper's
     numbers: a shorter horizon keeps the trace loadable (every message
     hop and protocol instance becomes a span). *)
  (* The first proactive redistribution trigger fires around 90 s of
     virtual time, so even the quick horizon runs past it. *)
  let duration_ms = if quick then 100_000.0 else 180_000.0 in
  let clients = Exp_common.client_regions () in
  (* Start at the daily peak with an inflated usage footprint (the
     fig3e/fig3c setup) so the short window still shows redistributions —
     otherwise the protocol lanes of the trace would be empty. *)
  let requests =
    Lab.workload ctx ~client_regions:clients ~duration_ms ~usage_scale:2.2
      ~start_hours:6.0 ~seed:Exp_common.seed ()
  in
  Pool.map
    (fun (label, build) ->
      let t_system = build () in
      let sink =
        Obs.Sink.create ~now:(fun () -> Des.Engine.now t_system.Systems.engine) ()
      in
      t_system.Systems.subscribe sink;
      let spec =
        {
          (Driver.default_spec ~client_regions:clients ~requests ~duration_ms) with
          drain_ms = 10_000.0;
          obs = Some sink;
        }
      in
      let result = Driver.run ~t_system spec in
      { label; sink; result; stats = t_system.Systems.stats () })
    (Exp_headline.builders ctx)

let run ctx ~quick ~experiment =
  if List.mem experiment experiments then Ok (capture_headline ctx ~quick)
  else
    Error
      (Printf.sprintf "unknown traceable experiment %S; known: %s" experiment
         (String.concat ", " experiments))

let trace_json captures =
  let buf = Buffer.create (1 lsl 16) in
  Obs.Export.trace_json buf
    (List.map (fun c -> (c.label, c.sink.Obs.Sink.spans)) captures);
  Buffer.contents buf

let metrics_json ?meta captures =
  let buf = Buffer.create (1 lsl 14) in
  Obs.Export.metrics_json buf ?meta
    (List.map (fun c -> (c.label, c.sink.Obs.Sink.metrics)) captures);
  Buffer.contents buf

let summary fmt captures =
  Report.table fmt ~title:"trace capture"
    ~header:[ "system"; "committed"; "spans+instants"; "messages" ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.label;
             string_of_int c.result.Driver.committed;
             string_of_int (Obs.Span.event_count c.sink.Obs.Sink.spans);
             string_of_int c.stats.Systems.messages_sent;
           ])
         captures)
