let builders ?engine_jobs ctx : (string * (unit -> Systems.facade)) list =
  let entity = Exp_common.entity and maximum = Exp_common.maximum in
  let seed = Exp_common.seed in
  let regions = Exp_common.client_regions () in
  let forecaster = Lab.runtime_forecaster ctx in
  [
    ( "Samya w/ Av.[(n+1)/2]",
      fun () ->
        Systems.samya ?engine_jobs ~seed
          ~config:(Exp_common.samya_config Samya.Config.Majority)
          ~regions ~forecaster ~entity ~maximum () );
    ( "Samya w/ Av.[*]",
      fun () ->
        Systems.samya ?engine_jobs ~seed
          ~config:(Exp_common.samya_config Samya.Config.Star) ~regions
          ~forecaster ~entity ~maximum () );
    ("Dem./Escrow", fun () -> Systems.demarcation ~seed ~regions ~entity ~maximum ());
    ("MultiPaxSys", fun () -> Systems.multipaxsys ~seed ~entity ~maximum ());
    ("CockroachDB", fun () -> Systems.cockroach ~seed ~entity ~maximum ());
  ]

(* Paper Table 2b, for side-by-side printing. *)
let paper_latency =
  [
    ("Samya w/ Av.[(n+1)/2]", (1.40, 10.2, 65.1));
    ("Samya w/ Av.[*]", (2.9, 37.3, 97.3));
    ("Dem./Escrow", (3.5, 59.6, 213.9));
    ("MultiPaxSys", (126.8, 172.7, 276.3));
    ("CockroachDB", (158.7, 184.2, 351.4));
  ]

let run ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:60.0 ~quick_min:10.0 in
  let requests =
    Lab.workload ctx ~client_regions:(Exp_common.client_regions ()) ~duration_ms
      ~seed:Exp_common.seed ()
  in
  Format.fprintf fmt "@.== Table 2b + Fig 3b: latency and throughput (%d requests, %.0f min) ==@."
    (Array.length requests)
    (Report.minutes_of_ms duration_ms);
  let outcomes =
    Pool.map
      (fun (label, build) ->
        Exp_common.run_system ~label ~build ~requests ~duration_ms
          ~window_ms:(Exp_common.window_ms ~quick) ())
      (builders ctx)
  in
  (* Table 2b. *)
  let latency_rows =
    List.map
      (fun (o : Exp_common.outcome) ->
        let p q = Driver.percentile o.result q in
        let p90, p95, p99 = List.assoc o.label paper_latency in
        [
          o.label;
          Report.ms (p 90.0);
          Report.ms (p 95.0);
          Report.ms (p 99.0);
          Printf.sprintf "%.1f/%.1f/%.1f" p90 p95 p99;
        ])
      outcomes
  in
  Report.table fmt ~title:"Table 2b: commit latency percentiles"
    ~header:[ "system"; "p90"; "p95"; "p99"; "paper p90/95/99 (ms)" ]
    ~rows:latency_rows;
  (* Fig 3b: throughput over time. *)
  let series =
    List.map
      (fun (o : Exp_common.outcome) -> (o.label, Exp_common.throughput_series o ~duration_ms))
      outcomes
  in
  Report.series fmt ~title:"Fig 3b: committed throughput over time" ~unit_label:"txn/s"
    series;
  (* Totals and headline ratios. *)
  let committed label =
    let o = List.find (fun (o : Exp_common.outcome) -> o.label = label) outcomes in
    o.result.Driver.committed
  in
  let redistributions label =
    let o = List.find (fun (o : Exp_common.outcome) -> o.label = label) outcomes in
    o.redistributions
  in
  let maj = committed "Samya w/ Av.[(n+1)/2]" and star = committed "Samya w/ Av.[*]" in
  let dem = committed "Dem./Escrow" in
  let mp = committed "MultiPaxSys" and crdb = committed "CockroachDB" in
  let ratio a b = if b = 0 then infinity else float_of_int a /. float_of_int b in
  Report.table fmt ~title:"Fig 3b: committed transactions (totals)"
    ~header:[ "system"; "committed"; "rejected"; "unavailable"; "invariant" ]
    ~rows:
      (List.map
         (fun (o : Exp_common.outcome) ->
           [
             o.label;
             string_of_int o.result.Driver.committed;
             string_of_int o.result.Driver.rejected;
             string_of_int o.result.Driver.unavailable;
             Exp_common.pp_invariant o.invariant;
           ])
         outcomes);
  Report.kv fmt
    [
      ("Samya[(n+1)/2] vs MultiPaxSys", Report.f1 (ratio maj mp) ^ "x  (paper: 16-18x)");
      ("Samya[(n+1)/2] vs CockroachDB", Report.f1 (ratio maj crdb) ^ "x  (paper: 16-18x)");
      ("Dem./Escrow vs MultiPaxSys", Report.f1 (ratio dem mp) ^ "x  (paper: ~11x)");
      ("Samya vs Dem./Escrow", Report.f2 (ratio maj dem) ^ "x  (paper: ~1.3x)");
      ("Samya[*] vs Samya[(n+1)/2]", Report.f2 (ratio star maj) ^ "x  (paper: <1)");
      ( "redistributions maj vs star",
        Printf.sprintf "%d vs %d  (paper: 208 vs 792)"
          (redistributions "Samya w/ Av.[(n+1)/2]")
          (redistributions "Samya w/ Av.[*]") );
    ]
