(* The retry-storm scenario — the overload-resilience headline.

   One flash sale on one entity: a 5-site cluster holds the "sale" quota
   while an open-loop stream runs at base rate, spikes to several times
   the home site's CPU capacity for a few seconds, and — just before the
   sale opens — a partition cuts the hot entity's home region off from
   every peer, so every redistribution the spike triggers aborts against
   the dead links (tripping the circuit breaker) while the queue grows. Four client populations
   replay the identical stream: no retries, naive immediate retries,
   exponential backoff with jitter, and backoff against a cluster running
   the full overload-resilience stack (deadlines, the CoDel-style
   admission gate, the redistribution circuit breaker).

   The measured story is metastability: naive retries multiply the
   offered load by the attempt budget, so after the fault heals the
   effective arrival rate still exceeds the home site's capacity and
   goodput never recovers — the system is stuck in the bad equilibrium
   the fault created. Admission control sheds the excess for free
   (rejected-deadline replies cost no service time), which keeps the CPU
   backlog bounded and lets the same retrying clients drain back to
   steady state within seconds of the heal.

   The verdict compares each arm's post-heal goodput with its own
   pre-fault goodput. Quick mode is the CI smoke: the same shape on a
   half-length horizon. *)

type scale = {
  base_rate_per_s : float;
  spike_rate_per_s : float;
  spike_start_ms : float;
  spike_end_ms : float;
  partition_at_ms : float;
  partition_heal_ms : float;
  duration_ms : float;
  hold_ms : float;  (* grant lifetime: the driver's grant-driven release *)
  quota : int;  (* the sale entity's global maximum *)
  timeout_ms : float;  (* client patience per attempt *)
  pre_from_ms : float;  (* pre-fault goodput window: [pre_from, spike_start) *)
  post_from_ms : float;  (* post-heal goodput window: [post_from, duration) *)
}

let scale ~quick =
  if quick then
    {
      base_rate_per_s = 600.0;
      spike_rate_per_s = 2_000.0;
      spike_start_ms = 10_000.0;
      spike_end_ms = 12_500.0;
      partition_at_ms = 9_800.0;
      partition_heal_ms = 14_000.0;
      duration_ms = 30_000.0;
      hold_ms = 1_000.0;
      quota = 3_000;
      timeout_ms = 1_000.0;
      pre_from_ms = 5_000.0;
      post_from_ms = 20_000.0;
    }
  else
    {
      base_rate_per_s = 600.0;
      spike_rate_per_s = 2_000.0;
      spike_start_ms = 20_000.0;
      spike_end_ms = 25_000.0;
      partition_at_ms = 19_800.0;
      partition_heal_ms = 27_000.0;
      duration_ms = 60_000.0;
      hold_ms = 1_000.0;
      quota = 3_000;
      timeout_ms = 1_000.0;
      pre_from_ms = 10_000.0;
      post_from_ms = 40_000.0;
    }

let n_sites = 5

let entity = "sale"

let home = 0

let home_affinity = 0.9

type arm = {
  a_id : string;  (* stable key for tests and docs *)
  a_label : string;
  a_retry : Driver.retry option;
  a_admission : bool;  (* deadlines + admission gate + circuit breaker *)
}

(* One jitter root for every arm: arms differ by policy, not by luck. *)
let jitter_seed = 7_767L

let backoff_retry =
  {
    Driver.max_attempts = 4;
    base_backoff_ms = 500.0;
    max_backoff_ms = 4_000.0;
    jitter = 0.5;
    jitter_seed;
  }

let arms =
  [
    { a_id = "none"; a_label = "no retry"; a_retry = None; a_admission = false };
    {
      a_id = "naive";
      a_label = "naive immediate";
      a_retry =
        Some
          {
            Driver.max_attempts = 4;
            base_backoff_ms = 0.0;
            max_backoff_ms = 0.0;
            jitter = 0.0;
            jitter_seed;
          };
      a_admission = false;
    };
    {
      a_id = "backoff";
      a_label = "backoff+jitter";
      a_retry = Some backoff_retry;
      a_admission = false;
    };
    {
      a_id = "admission";
      a_label = "backoff+admission";
      a_retry = Some backoff_retry;
      a_admission = true;
    };
  ]

let config ~scale:s ~admission =
  let base =
    {
      (Exp_common.samya_config Samya.Config.Majority) with
      (* One entity, reactive-only: the scenario is about overload, not
         forecasting. *)
      Samya.Config.prediction_enabled = false;
      (* A checkout reservation is cheap — 0.5 ms of CPU caps a site at
         2 000 req/s, so the 2 000 req/s spike (90% home-skewed, plus the
         release per grant) overloads the home site roughly 2x while the
         base load keeps it just above 50% busy. *)
      local_processing_ms = 0.5;
      (* Let the hot share chase the spike instead of parking requests
         for the default 2 s between redistributions. *)
      redistribution_cooldown_ms = 500.0;
    }
  in
  if admission then
    {
      base with
      Samya.Config.deadline_budget_ms = s.timeout_ms;
      admission =
        { Samya.Config.Admission.target_ms = 50.0; interval_ms = 100.0 };
      breaker = { Samya.Config.Breaker.threshold = 2; probe_ms = 2_000.0 };
    }
  else base

let requests ~scale:s =
  let rng = Des.Rng.stream Exp_common.seed 1013 in
  Trace.Workload.flash_sale ~rng ~entity ~home ~n_clients:n_sites
    ~base_rate_per_s:s.base_rate_per_s ~spike_rate_per_s:s.spike_rate_per_s
    ~spike_start_ms:s.spike_start_ms ~spike_end_ms:s.spike_end_ms
    ~duration_ms:s.duration_ms ~home_affinity ()

let build ?engine_jobs ~scale:s ~admission () =
  let hooks = Facade.samya_hooks () in
  let engine_jobs =
    match engine_jobs with Some n -> n | None -> Pool.engine_jobs ()
  in
  let regions = Exp_common.client_regions () in
  let cluster =
    Samya.Cluster.create ~seed:Exp_common.seed ~engine_jobs
      ~config:(config ~scale:s ~admission) ~regions
      ~on_protocol_event:(Facade.protocol_event_hook hooks)
      ~obs:(Facade.obs_port hooks) ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum:s.quota;
  let t_system =
    Facade.of_samya_cluster ~name:"Samya flash sale" ~hooks ~regions ~entity
      cluster
  in
  (cluster, t_system)

type capture = {
  scale : scale;
  arm : arm;
  cluster : Samya.Cluster.t;
  offered : int;  (* requests in the stream (before any retries) *)
  sink : Obs.Sink.t option;
  slo : Obs.Slo.t;
  result : Driver.result;
  stats : Systems.stats;
  shed_deadline : int;  (* dead-on-arrival sheds, summed over sites *)
  shed_admission : int;  (* admission-gate sheds, summed over sites *)
  shed_expired : int;  (* queue entries expired while parked *)
  queue_peak : int;  (* per-entity queue high-water mark, max over sites *)
  breaker_trips : int;  (* circuit-breaker openings, summed over sites *)
  flight : Obs.Flight_recorder.t;  (* always-on black box *)
  hot : Obs.Heavy_hitters.Windowed.w;
  incidents : Obs.Watchdog.incident list;
}

let capture ?engine_jobs ?(observe = false) ~quick ~arm () =
  let s = scale ~quick in
  let cluster, t_system = build ?engine_jobs ~scale:s ~admission:arm.a_admission () in
  let sink =
    if observe then begin
      let sink =
        Obs.Sink.create ~now:(fun () -> Des.Engine.now t_system.Systems.engine) ()
      in
      t_system.Systems.subscribe sink;
      Some sink
    end
    else None
  in
  (* The always-on incident layer: every arm flies with the recorder and
     the request-path hot-key sketch armed. *)
  let flight = Obs.Flight_recorder.create () in
  let hot = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:2_000.0 () in
  t_system.Systems.arm { Obs.Flight_recorder.recorder = flight; hot = Some hot };
  (* 2 s windows resolve the spike, the outage and the recovery ramp. *)
  let slo = Obs.Slo.create ~window_ms:2_000.0 () in
  let requests = requests ~scale:s in
  let clients = Exp_common.client_regions () in
  let fault =
    Chaos.Nemesis.spike_partition ~site:home ~n_sites ~at_ms:s.partition_at_ms
      ~heal_ms:s.partition_heal_ms ~duration_ms:s.duration_ms
  in
  let events =
    List.concat_map
      (fun { Chaos.Nemesis.kind; at_ms; heal_ms } ->
        match kind with
        | Chaos.Nemesis.Partition { groups } ->
            [
              {
                Driver.at_ms;
                action = (fun () -> t_system.Systems.partition groups);
              };
              {
                Driver.at_ms = heal_ms;
                action = (fun () -> t_system.Systems.heal ());
              };
            ]
        | _ -> [])
      fault.Chaos.Nemesis.faults
  in
  let spec =
    {
      (Driver.default_spec ~client_regions:clients ~requests
         ~duration_ms:s.duration_ms)
      with
      drain_ms = 10_000.0;
      window_ms = 1_000.0;
      events;
      client_timeout_ms = s.timeout_ms;
      grant_driven_release_ms = Some s.hold_ms;
      obs = sink;
      slo = Some slo;
      flight = Some flight;
      track_entities = true;
      retry = arm.a_retry;
      deadline_budget_ms = (if arm.a_admission then s.timeout_ms else infinity);
    }
  in
  let result = Driver.run ~t_system spec in
  (* Auditor failures become recorder events too, so the watchdog's
     invariant rule sees them. (The figure re-checks and prints below.) *)
  (match Samya.Cluster.check_invariant cluster ~entity ~maximum:s.quota with
  | Ok () -> ()
  | Error reason ->
      Obs.Flight_recorder.record flight ~lane:(-1)
        ~ts:(Samya.Cluster.now cluster) ~kind:Obs.Flight_recorder.Invariant
        ~entity reason);
  let incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events flight) in
  let sum f =
    Array.fold_left (fun acc site -> acc + f site) 0 (Samya.Cluster.sites cluster)
  in
  let peak f =
    Array.fold_left
      (fun acc site -> max acc (f site))
      0 (Samya.Cluster.sites cluster)
  in
  {
    scale = s;
    arm;
    cluster;
    offered = Array.length requests;
    sink;
    slo;
    result;
    stats = t_system.Systems.stats ();
    shed_deadline = sum Samya.Site.shed_deadline;
    shed_admission = sum Samya.Site.shed_admission;
    shed_expired = sum Samya.Site.shed_queue_expired;
    queue_peak = peak (fun site -> Samya.Site.queue_peak site ~entity);
    breaker_trips = sum (fun site -> Samya.Site.breaker_trips site ~entity);
    flight;
    hot;
    incidents;
  }

(* Mean committed throughput over [from_ms, until_ms), from the driver's
   1 s windows. *)
let goodput c ~from_ms ~until_ms =
  let wins =
    Stats.Throughput.series c.result.Driver.throughput
      ~until_ms:(c.scale.duration_ms -. 1.0) ()
  in
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (t0, v) ->
      if t0 >= from_ms && t0 < until_ms then begin
        sum := !sum +. v;
        incr n
      end)
    wins;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let recovery c =
  let pre = goodput c ~from_ms:c.scale.pre_from_ms ~until_ms:c.scale.spike_start_ms in
  let post = goodput c ~from_ms:c.scale.post_from_ms ~until_ms:c.scale.duration_ms in
  let ratio = if pre > 0.0 then post /. pre else Float.nan in
  (pre, post, ratio)

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let run _ctx ~quick fmt =
  let s = scale ~quick in
  Format.fprintf fmt
    "@.== retry storm: flash sale %.0f -> %.0f req/s (%.0f-%.0f s), home \
     region partitioned %.0f-%.0f s ==@."
    s.base_rate_per_s s.spike_rate_per_s
    (s.spike_start_ms /. 1000.0)
    (s.spike_end_ms /. 1000.0)
    (s.partition_at_ms /. 1000.0)
    (s.partition_heal_ms /. 1000.0);
  Report.kv fmt
    [
      ("entity / quota", Printf.sprintf "%s / %d tokens over %d sites" entity s.quota n_sites);
      ("home affinity", pct home_affinity);
      ("grant lifetime", Report.ms s.hold_ms);
      ("client timeout", Report.ms s.timeout_ms);
      ( "goodput windows",
        Printf.sprintf "pre-fault [%.0f, %.0f) s, post-heal [%.0f, %.0f) s"
          (s.pre_from_ms /. 1000.0)
          (s.spike_start_ms /. 1000.0)
          (s.post_from_ms /. 1000.0)
          (s.duration_ms /. 1000.0) );
    ];
  let captures = List.map (fun arm -> capture ~quick ~arm ()) arms in
  (* Outcomes: what each client population experienced. *)
  Report.table fmt ~title:"retry storm: client outcomes"
    ~header:
      [ "clients"; "offered"; "committed"; "rejected"; "shed"; "timed out"; "retries"; "p50"; "p99" ]
    ~rows:
      (List.map
         (fun c ->
           let r = c.result in
           [
             c.arm.a_label;
             string_of_int c.offered;
             string_of_int r.Driver.committed;
             string_of_int r.Driver.rejected;
             string_of_int r.Driver.shed;
             string_of_int r.Driver.timed_out;
             string_of_int r.Driver.retries;
             Report.ms (Driver.percentile r 50.0);
             Report.ms (Driver.percentile r 99.0);
           ])
         captures);
  (* What the sites did to survive: sheds, queue pressure, the breaker. *)
  Report.table fmt ~title:"retry storm: server-side resilience"
    ~header:
      [ "clients"; "shed deadline"; "shed admission"; "queue expired"; "queue peak"; "breaker trips" ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.arm.a_label;
             string_of_int c.shed_deadline;
             string_of_int c.shed_admission;
             string_of_int c.shed_expired;
             string_of_int c.queue_peak;
             string_of_int c.breaker_trips;
           ])
         captures);
  (* The figure: committed throughput per arm — the metastable arm stays
     on the floor after the heal, the admission arm climbs back. *)
  Report.series fmt ~title:"retry storm: committed throughput (figure)"
    ~unit_label:"txn/s"
    (List.map
       (fun c ->
         ( c.arm.a_label,
           Stats.Throughput.series c.result.Driver.throughput
             ~until_ms:(s.duration_ms -. 1.0) () ))
       captures);
  (* The verdict: post-heal goodput against each arm's own pre-fault
     goodput. *)
  Report.table fmt ~title:"retry storm: recovery verdict"
    ~header:[ "clients"; "pre-fault tps"; "post-heal tps"; "post/pre"; "verdict" ]
    ~rows:
      (List.map
         (fun c ->
           let pre, post, ratio = recovery c in
           let verdict =
             if Float.is_nan ratio then "no pre-fault traffic"
             else if ratio < 0.5 then "METASTABLE"
             else if ratio >= 0.9 then "recovered"
             else "degraded"
           in
           [ c.arm.a_label; Report.f1 pre; Report.f1 post; pct ratio; verdict ])
         captures);
  (* SLO with the abort-class breakdown: the same monitor as every other
     scenario, plus who-killed-it attribution. *)
  List.iter
    (fun c ->
      let lines = Obs.Slo.report c.slo in
      let classes = Obs.Slo.abort_classes c.slo in
      let breakdown =
        if classes = [] then "none"
        else
          String.concat ", "
            (List.map (fun (cls, n) -> Printf.sprintf "%s %d" cls n) classes)
      in
      Format.fprintf fmt "%s: SLO %s; aborts by class: %s@." c.arm.a_label
        (if Obs.Slo.healthy lines then "healthy" else "VIOLATED")
        breakdown)
    captures;
  (* Token conservation per arm, after the drain: shedding and retries
     must never mint or leak tokens. *)
  List.iter
    (fun c ->
      match Samya.Cluster.check_invariant c.cluster ~entity ~maximum:s.quota with
      | Ok () ->
          Format.fprintf fmt "token conservation (%s): OK@." c.arm.a_label
      | Error reason ->
          Format.fprintf fmt "token conservation (%s): VIOLATED: %s@."
            c.arm.a_label reason)
    captures;
  (* The always-on black box: what the watchdog caught without anyone
     re-running the workload with tracing on. One bundle is materialised
     for the resilient arm's first SLO breach — it names the breaching
     window, and its context events carry the breaker trips and sheds of
     the mid-spike partition. *)
  Report.table fmt ~title:"incident watchdog (flight recorder, DESIGN.md S16)"
    ~header:[ "clients"; "recorded"; "dropped"; "incidents"; "by rule" ]
    ~rows:
      (List.map
         (fun c ->
           let by_rule =
             match Obs.Watchdog.count_by_rule c.incidents with
             | [] -> "-"
             | counts ->
                 String.concat ", "
                   (List.map
                      (fun (rule, n) -> Printf.sprintf "%s %d" rule n)
                      counts)
           in
           [
             c.arm.a_label;
             string_of_int (Obs.Flight_recorder.recorded c.flight);
             string_of_int (Obs.Flight_recorder.dropped c.flight);
             string_of_int (List.length c.incidents);
             by_rule;
           ])
         captures);
  (match
     List.find_opt (fun c -> c.arm.a_admission && c.arm.a_retry <> None) captures
   with
  | None -> ()
  | Some c ->
      Format.fprintf fmt "@.black box (%s):@." c.arm.a_label;
      (match
         List.find_opt (fun i -> i.Obs.Watchdog.i_rule = "slo-breach") c.incidents
       with
      | None -> Format.fprintf fmt "  no SLO breach captured@."
      | Some incident ->
          let bundle =
            Obs.Watchdog.bundle ~hot:c.hot
              (Obs.Flight_recorder.events c.flight)
              incident
          in
          Format.fprintf fmt "  trigger: %s@." (Obs.Watchdog.incident_line incident);
          Format.fprintf fmt "  recent events at trigger:@.";
          List.iter
            (fun ev -> Format.fprintf fmt "    %s@." (Obs.Flight_recorder.line ev))
            bundle.Obs.Watchdog.b_events;
          let window =
            match bundle.Obs.Watchdog.b_hot_window with
            | Some start ->
                Printf.sprintf "window [%.0f s, %.0f s)" (start /. 1000.0)
                  ((start +. 2_000.0) /. 1000.0)
            | None -> "whole run"
          in
          Format.fprintf fmt "  hot keys in %s:%s@." window
            (String.concat ""
               (List.map
                  (fun (key, n) -> Printf.sprintf "  %s %d" key n)
                  bundle.Obs.Watchdog.b_hot)));
      (match
         List.find_opt
           (fun i -> i.Obs.Watchdog.i_rule = "breaker-trip")
           c.incidents
       with
      | None -> ()
      | Some trip ->
          Format.fprintf fmt "  first breaker trip: %s@."
            (Obs.Watchdog.incident_line trip)))
