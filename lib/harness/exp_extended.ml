let entity = Exp_common.entity
let seed = Exp_common.seed

let run_max_limit _ctx ~quick fmt =
  let duration_ms = Exp_common.duration_ms ~quick ~full_min:20.0 ~quick_min:8.0 in
  let limits = [ 600; 1_000; 2_500; 5_000; 16_000 ] in
  let regions = Exp_common.client_regions () in
  (* This sweep isolates the effect of M_e on resources that stay acquired:
     releases are grant-driven with a real VM lifetime, so a tight limit
     throttles the token flow instead of being recycled through the
     stream's own schedule. *)
  let lifetime_ms = 30_000.0 in
  let ctx = Lab.create () in
  let requests =
    Lab.workload ctx ~client_regions:regions ~duration_ms ~start_hours:6.0 ~seed ()
  in
  let forecaster = Lab.runtime_forecaster ctx in
  Format.fprintf fmt "@.== ext1 (§5.9.i): varying the maximum limit M_e ==@.";
  let measure variant maximum =
    let t_system =
      Systems.samya ~seed
        ~config:(Exp_common.samya_config variant)
        ~regions ~forecaster ~entity ~maximum ()
    in
    let spec =
      {
        (Driver.default_spec ~client_regions:regions ~requests ~duration_ms) with
        grant_driven_release_ms = Some lifetime_ms;
        window_ms = Exp_common.window_ms ~quick;
      }
    in
    Driver.run ~t_system spec
  in
  (* Steady-state throughput: the second half of the window, after the
     standing usage has filled whatever M_e allows. *)
  let tail_tps (result : Driver.result) =
    let points =
      Stats.Throughput.series result.Driver.throughput ~until_ms:(duration_ms -. 1.0) ()
      |> List.filter (fun (t, _) -> t >= duration_ms /. 2.0)
    in
    match points with
    | [] -> 0.0
    | _ -> List.fold_left (fun acc (_, v) -> acc +. v) 0.0 points /. float_of_int (List.length points)
  in
  let rows =
    Pool.map
      (fun maximum ->
        let maj = measure Samya.Config.Majority maximum in
        let star = measure Samya.Config.Star maximum in
        (maximum, Driver.average_tps maj, tail_tps maj, maj.Driver.rejected, tail_tps star))
      limits
  in
  Report.table fmt ~title:"ext1: throughput vs maximum limit (Avantan)"
    ~header:
      [ "M_e"; "maj txn/s (whole run)"; "maj txn/s (steady)"; "maj rejected"; "star txn/s (steady)" ]
    ~rows:
      (List.map
         (fun (m, maj_tps, maj_tail, maj_rej, star_tail) ->
           [
             string_of_int m;
             Report.f1 maj_tps;
             Report.f1 maj_tail;
             string_of_int maj_rej;
             Report.f1 star_tail;
           ])
         rows);
  let tail_at m = match List.find (fun (m', _, _, _, _) -> m' = m) rows with
    | _, _, tail, _, _ -> tail
  in
  Report.kv fmt
    [
      ( "steady-state throughput max-limit vs mean-limit",
        Report.f2 (tail_at 16_000 /. Float.max 1.0 (tail_at 600)) ^ "x  (paper: ~5x)" );
    ]

let run_arrival_rate ctx ~quick fmt =
  (* Same number of trace intervals at each rate; only the interval length
     changes, from 5 s (compress 60) back to the original 300 s. *)
  let intervals = if quick then 60 else 120 in
  let compressions = [ (60, "5 s"); (12, "25 s"); (3, "100 s"); (1, "300 s") ] in
  let regions = Exp_common.client_regions () in
  Format.fprintf fmt "@.== ext2 (§5.9.ii): varying the request arrival interval ==@.";
  let measure compress (label, build) =
    let interval_ms = 300_000.0 /. float_of_int compress in
    let duration_ms = float_of_int intervals *. interval_ms in
    let requests =
      Lab.workload ctx ~client_regions:regions ~duration_ms ~compress ~start_hours:6.0
        ~seed ()
    in
    let outcome =
      Exp_common.run_system ~label ~build ~requests ~duration_ms
        ~window_ms:(duration_ms /. 20.0) ()
    in
    (label, outcome.Exp_common.result.Driver.committed)
  in
  let forecaster = Lab.runtime_forecaster ctx in
  let builders : (string * (unit -> Systems.facade)) list =
    [
      ( "Avantan[(n+1)/2]",
        fun () ->
          Systems.samya ~seed
            ~config:(Exp_common.samya_config Samya.Config.Majority)
            ~regions ~forecaster ~entity ~maximum:Exp_common.maximum () );
      ("MultiPaxSys", fun () -> Systems.multipaxsys ~seed ~entity ~maximum:Exp_common.maximum ());
    ]
  in
  let rows =
    Pool.map
      (fun (compress, interval_label) ->
        let measured = List.map (measure compress) builders in
        let samya_committed = List.assoc "Avantan[(n+1)/2]" measured in
        let mp_committed = List.assoc "MultiPaxSys" measured in
        [
          interval_label;
          string_of_int samya_committed;
          string_of_int mp_committed;
          Report.f2 (float_of_int samya_committed /. float_of_int (max 1 mp_committed));
        ])
      compressions
  in
  Report.table fmt ~title:"ext2: committed transactions vs arrival interval"
    ~header:[ "interval"; "Avantan[(n+1)/2]"; "MultiPaxSys"; "ratio" ]
    ~rows;
  Report.kv fmt
    [ ("paper", "Avantan commits 43% more even at the original 300 s interval") ]
