(** Index of every reproducible table and figure, keyed by the experiment
    ids used in DESIGN.md, the bench harness and the CLI. *)

type experiment = {
  id : string;
  paper_artifact : string;  (** e.g. "Table 2b" *)
  description : string;
  run : Lab.context -> quick:bool -> Format.formatter -> unit;
}

val all : experiment list

val find : string -> experiment option

val ids : unit -> string list

val validate : string list -> (experiment list, string) result
(** Resolve a list of requested ids up front; [Error] names the first
    unknown id, so a typo fails before any experiment runs. *)

val run_by_id : Lab.context -> quick:bool -> Format.formatter -> string -> (unit, string) result

type rendered = {
  experiment : experiment;
  output : string;  (** everything the experiment wrote to its formatter *)
  seconds : float;  (** wall-clock spent inside the run, per [time] *)
}

val run_many :
  ?time:(unit -> float) -> Lab.context -> quick:bool -> experiment list -> rendered list
(** Run the experiments on the {!Pool} (inline when [Pool.jobs () = 1]),
    each rendering into a private buffer, and return the captured outputs
    {e in submission order} — printing them in sequence is byte-identical
    to a sequential run. [time] supplies wall-clock timestamps (default:
    always [0.], i.e. timing disabled); the harness takes it as a
    parameter so the library itself needs no clock dependency. *)
