type context = {
  params : Trace.Azure_trace.params;
  base : Trace.Azure_trace.t;
  (* The two fit caches are filled lazily and may be raced by parallel
     experiments (Pool.map); [lock] serialises the fill. Fitting is
     deterministic, so whichever domain computes first stores the value
     every other domain would have. *)
  lock : Mutex.t;
  mutable table2a_cache : (string * Ml.Forecaster.t * float) list option;
  mutable runtime_cache : Ml.Forecaster.t option;
}

let create ?(params = Trace.Azure_trace.default_params) () =
  {
    params;
    base = Trace.Azure_trace.generate params;
    lock = Mutex.create ();
    table2a_cache = None;
    runtime_cache = None;
  }

let params t = t.params

let base_trace t = t.base

(* LSTM sizing: small enough to train in seconds, big enough to learn the
   daily shape; fitted on the tail of the train split. *)
let lstm_config =
  { Ml.Lstm.default_config with hidden = 16; window = 28; epochs = 10; learning_rate = 4e-3 }

let lstm_train_points = 2_500

let train_lstm ?(config = lstm_config) series =
  let n = Array.length series in
  let tail = Array.sub series (max 0 (n - lstm_train_points)) (min n lstm_train_points) in
  Ml.Lstm.train ~config tail

(* The demand series is heavy-tailed (bursts reach 30x the mean), so the
   regression models are fitted in log space — the standard treatment for
   bursty count data; the random walk is invariant to it. *)
let log1p_array = Array.map (fun x -> log (1.0 +. Float.max 0.0 x))

(* Double-checked fill of a cache slot under [t.lock]. *)
let cached t ~get ~set fit =
  match get t with
  | Some value -> value
  | None ->
      Mutex.lock t.lock;
      let value =
        match get t with
        | Some value -> value (* another domain won the race *)
        | None ->
            let value = try fit () with exn -> Mutex.unlock t.lock; raise exn in
            set t value;
            value
      in
      Mutex.unlock t.lock;
      value

let fit_table2a t =
  cached t
    ~get:(fun t -> t.table2a_cache)
    ~set:(fun t v -> t.table2a_cache <- Some v)
    (fun () ->
      let train, test = Trace.Azure_trace.split t.base ~train_fraction:0.8 in
      let random_walk = Ml.Random_walk.forecaster () in
      let arima_model = Ml.Arima.fit ~p:3 ~d:1 (log1p_array train) in
      let arima =
        Ml.Forecaster.of_fn ~name:"arima(3,1,0)-log" ~min_history:5 (fun history ->
            Float.max 0.0 (exp (Ml.Arima.predict_next arima_model (log1p_array history)) -. 1.0))
      in
      let lstm_model = train_lstm (log1p_array train) in
      let lstm =
        Ml.Forecaster.of_fn ~name:"lstm-log" ~min_history:lstm_config.Ml.Lstm.window
          (fun history ->
            Float.max 0.0 (exp (Ml.Lstm.predict_next lstm_model (log1p_array history)) -. 1.0))
      in
      List.map
        (fun (name, forecaster) ->
          (name, forecaster, Ml.Forecaster.rolling_mae forecaster ~train ~test))
        [ ("Random Walk", random_walk); ("ARIMA", arima); ("LSTM", lstm) ])

let demand_forecasters t =
  List.map (fun (name, forecaster, _) -> (name, forecaster)) (fit_table2a t)

let table2a t = List.map (fun (name, _, mae) -> (name, mae)) (fit_table2a t)

let runtime_forecaster t =
  cached t
    ~get:(fun t -> t.runtime_cache)
    ~set:(fun t v -> t.runtime_cache <- Some v)
    (fun () ->
      (* The runtime Prediction Module forecasts per-epoch NET consumption
         (creations minus deletions): that is the quantity a site must
         cover with tokens. *)
      let net =
        Array.init
          (Trace.Azure_trace.length t.base)
          (fun i ->
            t.base.Trace.Azure_trace.creations.(i) -. t.base.Trace.Azure_trace.deletions.(i))
      in
      let train, _ = Stats.Series.split_at_fraction 0.8 net in
      Ml.Lstm.forecaster (train_lstm train))

let prepare t = ignore (runtime_forecaster t)

let mix_seed seed i = Int64.add seed (Int64.of_int ((i + 1) * 7_919))

let workload t ~client_regions ~duration_ms ?(compress = 60) ?(read_ratio = 0.0)
    ?(demand_scale = 1.0) ?usage_scale ?(start_hours = 0.0) ~seed () =
  let usage_scale = Option.value usage_scale ~default:demand_scale in
  let interval_ms = t.base.Trace.Azure_trace.interval_s *. 1000.0 /. float_of_int compress in
  let intervals = int_of_float (Float.ceil (duration_ms /. interval_ms)) in
  let start_interval = int_of_float (Float.round (start_hours *. 12.0)) in
  let streams =
    Array.to_list
      (Array.mapi
         (fun client region ->
           let params =
             {
               t.params with
               Trace.Azure_trace.seed = mix_seed seed client;
               mean_demand = t.params.Trace.Azure_trace.mean_demand *. demand_scale;
               usage_level = t.params.Trace.Azure_trace.usage_level *. usage_scale;
               usage_swing = t.params.Trace.Azure_trace.usage_swing *. usage_scale;
               usage_growth_per_day =
                 t.params.Trace.Azure_trace.usage_growth_per_day *. usage_scale;
             }
           in
           let trace =
             Trace.Azure_trace.generate params
             |> Trace.Azure_trace.phase_shift
                  ~hours:(Trace.Azure_trace.region_shift_hours region)
             |> Trace.Azure_trace.compress ~factor:compress
           in
           let rng = Des.Rng.create (Int64.add (mix_seed seed client) 13L) in
           let total = Trace.Azure_trace.length trace in
           let stream =
             Trace.Workload.of_trace ~rng ~trace ~site:client ~start_interval
               ~intervals:(min intervals (total - start_interval)) ()
           in
           if read_ratio > 0.0 then Trace.Workload.with_reads ~rng ~read_ratio stream
           else stream)
         client_regions)
  in
  Trace.Workload.merge streams
