type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let append t record =
  if t.size = Array.length t.data then begin
    let capacity = max 16 (2 * Array.length t.data) in
    let data = Array.make capacity record in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- record;
  t.size <- t.size + 1;
  t.size - 1

let length t = t.size

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Wal.get: index out of range";
  t.data.(i)

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let iter t f =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let truncate_from t i =
  if i < 0 then invalid_arg "Wal.truncate_from: negative index";
  if i < t.size then begin
    (* Clear the dropped slots so truncation actually releases the records:
       keeping them referenced is a space leak under repeated
       truncate/append cycles. Index 0 gone means no live record is left to
       fill with, so the whole buffer is released. *)
    if i = 0 then t.data <- [||]
    else Array.fill t.data i (Array.length t.data - i) t.data.(i - 1);
    t.size <- i
  end

let to_list t = Array.to_list (Array.sub t.data 0 t.size)
