type 'a t = { table : (string, 'a) Hashtbl.t; mutable writes : int }

let create () = { table = Hashtbl.create 16; writes = 0 }

let put t ~key value =
  t.writes <- t.writes + 1;
  Hashtbl.replace t.table key value

let get t ~key = Hashtbl.find_opt t.table key

let get_exn t ~key =
  match Hashtbl.find_opt t.table key with
  | Some v -> v
  | None -> raise Not_found

let remove t ~key = Hashtbl.remove t.table key

let mem t ~key = Hashtbl.mem t.table key

let keys t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let write_count t = t.writes
