(** Durability layer with a configurable sync policy.

    Sits between a protocol's in-memory state and {!Stable_store}: writes
    land in a volatile buffer and only survive a simulated crash once
    synced. [Sync_always] models write-through (fsync per update, the
    Paxos-safe default), [Sync_batched n] models group commit (a crash
    loses at most the last unsynced batch), [Sync_never] models a site
    that only persists its initial image — the configuration under which
    the chaos auditor can demonstrate why the Avantan safety argument
    needs durable promises. *)

type sync_policy = Sync_always | Sync_batched of int | Sync_never

val validate_policy : sync_policy -> (unit, string) result

type 'a t

val create : policy:sync_policy -> unit -> 'a t
(** Raises [Invalid_argument] on [Sync_batched n] with [n < 1]. *)

val policy : _ t -> sync_policy

val put : 'a t -> key:string -> 'a -> unit
(** Record the latest image for [key]; durable immediately under
    [Sync_always], otherwise once enough writes accumulate ([Sync_batched])
    or {!sync} is called explicitly. *)

val force : 'a t -> key:string -> 'a -> unit
(** Write-through regardless of policy (initial images: a site must not
    serve before its starting allocation is durable). *)

val sync : 'a t -> unit
(** Flush the volatile buffer to stable storage (in sorted key order, so
    the write pattern is deterministic). *)

val load : 'a t -> key:string -> 'a option
(** The last {e durable} image — unsynced writes are invisible, exactly
    what a recovering site would read back after a crash. *)

val lose_unsynced : 'a t -> int
(** Crash: discard the volatile buffer, returning how many keys lost
    unsynced updates. *)

val put_count : _ t -> int
val sync_count : _ t -> int
(** [put_count] counts logical writes; [sync_count] counts stable-storage
    flushes (a proxy for fsync cost). *)

val pending_count : _ t -> int
