type sync_policy = Sync_always | Sync_batched of int | Sync_never

let validate_policy = function
  | Sync_always | Sync_never -> Ok ()
  | Sync_batched n when n >= 1 -> Ok ()
  | Sync_batched _ -> Error "Sync_batched batch size must be >= 1"

type 'a t = {
  policy : sync_policy;
  store : 'a Stable_store.t;
  pending : (string, 'a) Hashtbl.t;
  mutable pending_writes : int;
  mutable puts : int;
  mutable syncs : int;
}

let create ~policy () =
  (match validate_policy policy with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Durable.create: " ^ reason));
  {
    policy;
    store = Stable_store.create ();
    pending = Hashtbl.create 8;
    pending_writes = 0;
    puts = 0;
    syncs = 0;
  }

let policy t = t.policy

let sync t =
  if Hashtbl.length t.pending > 0 then begin
    (* Keys are flushed in sorted order so the fsync pattern is
       deterministic across OCaml versions. *)
    let keys =
      List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.pending [])
    in
    List.iter
      (fun key -> Stable_store.put t.store ~key (Hashtbl.find t.pending key))
      keys;
    Hashtbl.reset t.pending;
    t.pending_writes <- 0;
    t.syncs <- t.syncs + 1
  end

let put t ~key value =
  t.puts <- t.puts + 1;
  match t.policy with
  | Sync_always ->
      Stable_store.put t.store ~key value;
      t.syncs <- t.syncs + 1
  | Sync_batched n ->
      Hashtbl.replace t.pending key value;
      t.pending_writes <- t.pending_writes + 1;
      if t.pending_writes >= n then sync t
  | Sync_never -> Hashtbl.replace t.pending key value

let force t ~key value =
  t.puts <- t.puts + 1;
  Hashtbl.remove t.pending key;
  Stable_store.put t.store ~key value;
  t.syncs <- t.syncs + 1

let load t ~key = Stable_store.get t.store ~key

let lose_unsynced t =
  let lost = Hashtbl.length t.pending in
  Hashtbl.reset t.pending;
  t.pending_writes <- 0;
  lost

let put_count t = t.puts

let sync_count t = t.syncs

let pending_count t = Hashtbl.length t.pending
