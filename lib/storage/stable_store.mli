(** Simulated durable key/value snapshot store.

    Complements {!Wal}: protocols checkpoint small state records (ballot
    numbers, token counts) under string keys; the store survives simulated
    crashes so recovery code can read back the last durable value. *)

type 'a t

val create : unit -> 'a t

val put : 'a t -> key:string -> 'a -> unit

val get : 'a t -> key:string -> 'a option

val get_exn : 'a t -> key:string -> 'a
(** Raises [Not_found]. *)

val remove : 'a t -> key:string -> unit

val mem : 'a t -> key:string -> bool

val keys : 'a t -> string list
(** Sorted ascending, so iteration order is deterministic across OCaml
    versions and hash-table layouts. *)

val write_count : 'a t -> int
(** Total number of durable writes performed — a proxy for fsync cost. *)
