type node = int

type unit_info = {
  name : string;
  parent : node option;
  limit : int option;
  entity : Samya.Types.entity option; (* Some iff limited *)
}

type t = {
  cluster : Samya.Cluster.t;
  org_name : string;
  mutable units : unit_info array;
}

let entity_for t node = Printf.sprintf "%s#%d" t.org_name node

let create ~cluster ~org_name ~root_limit =
  if root_limit <= 0 then invalid_arg "Org.create: root limit must be positive";
  let t = { cluster; org_name; units = [||] } in
  let entity = entity_for t 0 in
  Samya.Cluster.init_entity cluster ~entity ~maximum:root_limit;
  t.units <-
    [| { name = org_name; parent = None; limit = Some root_limit; entity = Some entity } |];
  t

let root _ = 0

let info t node =
  if node < 0 || node >= Array.length t.units then invalid_arg "Org: unknown node";
  t.units.(node)

let node_name t node = (info t node).name

let add_unit t ~parent ~name ?limit () =
  let _ = info t parent in
  (match limit with
  | Some l when l <= 0 -> invalid_arg "Org.add_unit: limit must be positive"
  | Some _ | None -> ());
  Array.iteri
    (fun _ u ->
      if u.parent = Some parent && String.equal u.name name then
        invalid_arg "Org.add_unit: duplicate unit name under this parent")
    t.units;
  let node = Array.length t.units in
  let entity =
    match limit with
    | Some maximum ->
        let entity = entity_for t node in
        Samya.Cluster.init_entity t.cluster ~entity ~maximum;
        Some entity
    | None -> None
  in
  t.units <-
    Array.append t.units [| { name; parent = Some parent; limit; entity } |];
  node

let rec path_rev t node =
  let u = info t node in
  match u.parent with None -> [ u.name ] | Some p -> u.name :: path_rev t p

let path t node = String.concat "/" (List.rev (path_rev t node))

let limited_ancestors t node =
  let rec walk node acc =
    let u = info t node in
    let acc = match u.entity with Some e -> (node, e) :: acc | None -> acc in
    match u.parent with None -> List.rev acc | Some p -> walk p acc
  in
  walk node []

(* Acquire on each limited level bottom-up; compensate on rejection. *)
let consume t ~node ~region ~amount ~reply =
  let levels = limited_ancestors t node in
  let rec acquire_levels pending acquired =
    match pending with
    | [] -> reply Samya.Types.Granted
    | (_, entity) :: rest ->
        Samya.Cluster.submit t.cluster ~region
          (Samya.Types.Acquire { entity; amount; deadline_ms = infinity })
          ~reply:(fun response ->
            match response with
            | Samya.Types.Granted -> acquire_levels rest (entity :: acquired)
            | Samya.Types.Rejected | Samya.Types.Rejected_deadline | Samya.Types.Unavailable
            | Samya.Types.Read_result _ ->
                (* Undo the lower levels already charged. *)
                List.iter
                  (fun entity ->
                    Samya.Cluster.submit t.cluster ~region
                      (Samya.Types.Release { entity; amount; deadline_ms = infinity })
                      ~reply:(fun _ -> ()))
                  acquired;
                reply Samya.Types.Rejected)
  in
  if amount <= 0 then reply Samya.Types.Rejected else acquire_levels levels []

let return_resources t ~node ~region ~amount ~reply =
  let levels = limited_ancestors t node in
  let remaining = ref (List.length levels) in
  if amount <= 0 || !remaining = 0 then reply Samya.Types.Rejected
  else
    List.iter
      (fun (_, entity) ->
        Samya.Cluster.submit t.cluster ~region
          (Samya.Types.Release { entity; amount; deadline_ms = infinity })
          ~reply:(fun _ ->
            decr remaining;
            if !remaining = 0 then reply Samya.Types.Granted))
      levels

(* Tiered contention policies: the deeper a limit sits in the tree, the
   more local its traffic, the less token movement its entity needs. One
   pin per limited node, on every site. *)
let pin_contention_tiers t =
  Array.iteri
    (fun node u ->
      match u.entity with
      | None -> ()
      | Some entity ->
          let policy =
            match List.length (limited_ancestors t node) with
            | 1 -> Samya.Config.Controller.Adaptive (* the root *)
            | 2 -> Samya.Config.Controller.(Static Borrow)
            | _ -> Samya.Config.Controller.(Static Escrow)
          in
          Samya.Cluster.pin_policy t.cluster ~entity policy)
    t.units

let binding_entity t node =
  match limited_ancestors t node with
  | (_, entity) :: _ -> entity
  | [] -> assert false (* the root is always limited *)

let usage t node = Samya.Cluster.total_acquired t.cluster ~entity:(binding_entity t node)

let availability t node =
  Samya.Cluster.total_tokens_left t.cluster ~entity:(binding_entity t node)
