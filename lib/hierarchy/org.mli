(** Hierarchical resource tracking — the paper's motivating scenario
    (§1, Figure 1).

    A cloud customer is an organization tree: the root holds the
    customer-wide limit the admin configured, and any unit (team,
    sub-team) may carry its own tighter limit. Consuming a resource in a
    unit must respect {e every} limit on the path to the root — "any
    update to an intermediary unit must percolate to the root node".

    Built on Samya: each limited node is its own Samya entity, so the hot
    root counter is dis-aggregated across the geo-distributed sites like
    any other, and a consume operation acquires tokens on each limited
    ancestor bottom-up. If an ancestor rejects (its limit is the binding
    one), the tokens already taken from lower limits are released —
    compensation, not locking, since token pools are commutative.

    Unlimited intermediate nodes cost nothing: only nodes with limits
    correspond to entities. *)

type t

type node

val create :
  cluster:Samya.Cluster.t -> org_name:string -> root_limit:int -> t
(** The root entity is registered on the cluster with [root_limit]
    tokens split across its sites. *)

val root : t -> node

val add_unit : t -> parent:node -> name:string -> ?limit:int -> unit -> node
(** Adds an organizational unit under [parent]. With [limit], the unit
    gets its own entity (and its own enforced budget); without, it is a
    pure grouping node. Raises [Invalid_argument] on duplicate names under
    one parent or non-positive limits. *)

val node_name : t -> node -> string

val path : t -> node -> string
(** Slash-separated path from the root, e.g. ["eCommerce.com/retail/clothing"]. *)

val limited_ancestors : t -> node -> (node * string) list
(** The limit-carrying nodes on the path from [node] (inclusive) to the
    root, bottom-up — the entities a consume must acquire. *)

val consume :
  t ->
  node:node ->
  region:Geonet.Region.t ->
  amount:int ->
  reply:(Samya.Types.response -> unit) ->
  unit
(** Acquire [amount] resource tokens for [node]: acquires on every limited
    ancestor bottom-up; on the first rejection the already-acquired levels
    are released and the client sees [Rejected]. *)

val return_resources :
  t ->
  node:node ->
  region:Geonet.Region.t ->
  amount:int ->
  reply:(Samya.Types.response -> unit) ->
  unit
(** Release [amount] back on every limited ancestor. The caller must not
    return more than it consumed for this node (same client contract as
    Samya's releaseTokens). *)

val pin_contention_tiers : t -> unit
(** Pins each limited node's token-movement policy on every site by its
    depth in limited ancestors — the org tree as the contention
    controller's escalation topology. The root entity percolates every
    consume in the organization, so it runs the full {!Samya.Config.Controller.Adaptive}
    state machine; a team limit directly under the root sees moderate
    cross-site traffic and is pinned to peer borrowing; deeper limits are
    mostly unit-local and pinned to plain escrow. Requires the cluster's
    {!Samya.Config.Controller.t.enabled} (raises [Invalid_argument]
    otherwise, like {!Samya.Cluster.pin_policy}). Call after the tree is
    built; units added later keep the site-wide default until re-pinned. *)

val usage : t -> node -> int
(** Tokens currently acquired against [node]'s own limit (the nearest
    limited ancestor's entity if the node itself is unlimited). *)

val availability : t -> node -> int
(** Tokens still grantable under [node]'s binding entity, summed across
    sites (a quiescent-state view, like the paper's global reads). *)
