(** Demarcation/Escrow — the value-partitioned baseline (§5, baseline ii).

    Captures the mechanisms of the demarcation protocol (Barbara &
    Garcia-Molina) extended to N sites (Alonso & El Abbadi) with site
    escrows (Kumar & Stonebraker): every site starts with an equal escrow
    of the entity's maximum and serves requests locally; when a request
    exceeds the local escrow the site {e borrows} from peers, asking one
    peer at a time in proximity order. A lender transfers the borrower's
    immediate need plus a small fixed escrow quantum — demarcation adjusts
    limits incrementally, with no notion of globally rebalancing the
    value. Client requests queue while a borrow is in progress.

    Faithful to its ancestry, the protocol assumes a reliable network — no
    retransmissions; a lost message blocks the borrower (a patience timer
    eventually rejects its queue so simulations terminate). There is no
    prediction and no global redistribution, which is exactly what Samya
    adds on top (§5.3: latency spikes on demand peaks, ~1.3x lower
    throughput). *)

type t

val create :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  ?processing_ms:float ->
  ?borrow_patience_ms:float ->
  ?borrow_quantum:int ->
  unit ->
  t
(** Default regions: the paper's five (us-west1, asia-east2, europe-west2,
    australia-southeast1, southamerica-east1). [borrow_quantum] (default
    10) is the fixed escrow chunk a lender adds on top of the borrower's
    immediate need — demarcation adjusts limits in small increments, which
    is what keeps it borrowing again at every demand peak. *)

val engine : t -> Des.Engine.t

val set_net_tracer : t -> Geonet.Network.tracer option -> unit
(** Install a message-hop observer on the internal network (the network
    itself is not exposed); [None] removes it. *)

val obs_port : t -> Obs.Sink.port
(** Late-bound observability port. With a sink attached, traced requests
    record their causal lifecycle (site acceptance, borrow-queue windows,
    CPU backlog waits, local service), so [explain] can attribute their
    latency. *)

val net_stats : t -> int * int * int
(** [(sent, delivered, dropped)] counters of the internal network. *)

val init_entity : t -> entity:Samya.Types.entity -> maximum:int -> unit

val submit :
  t ->
  region:Geonet.Region.t ->
  Samya.Types.request ->
  reply:(Samya.Types.response -> unit) ->
  unit

val crash_site : t -> int -> unit

val recover_site : t -> int -> unit
(** Bring a crashed site back; escrow shares survive (freeze model). *)

val partition : t -> int list list -> unit
val heal : t -> unit

val total_tokens_left : t -> entity:Samya.Types.entity -> int
val total_acquired : t -> entity:Samya.Types.entity -> int
val borrows : t -> int
(** Total borrow round-trips performed. *)

val check_invariant : t -> entity:Samya.Types.entity -> maximum:int -> (unit, string) result
