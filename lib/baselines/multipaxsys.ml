module Types = Samya.Types

type txn = {
  request : Types.request;
  reply : Types.response -> unit;
  ctx : Des.Trace_context.t;
      (* causal context the transaction arrived under, restored around its
         serialized execution so its rounds are attributed to it *)
}

type t = {
  engine : Des.Engine.t;
  network : Rsm.command Consensus.Multipaxos.msg Geonet.Network.t;
  region_array : Geonet.Region.t array;
  replicas : Rsm.command Consensus.Multipaxos.t array;
  states : Rsm.state array;
  leader : int;
  processing_ms : float;
  max_queue : int;
  rng : Des.Rng.t;
  queues : (Types.entity, txn Queue.t) Hashtbl.t;
  in_flight : (Types.entity, unit) Hashtbl.t;
  obs : Obs.Sink.port;
  mutable committed : int;
  mutable dropped : int;
}

let regions =
  [| Geonet.Region.Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 |]

let create ?(seed = 42L) ?(regions = regions) ?(leader = 1) ?(processing_ms = 0.15)
    ?(max_queue = 1) () =
  let engine = Des.Engine.create ~seed () in
  let network = Geonet.Network.create engine ~regions () in
  let n = Array.length regions in
  let nodes = List.init n (fun i -> i) in
  let states = Array.init n (fun _ -> Rsm.create_state ()) in
  let replicas =
    Array.init n (fun id ->
        let send dst msg = Geonet.Network.send network ~src:id ~dst msg in
        let on_apply _ command = Rsm.apply states.(id) command in
        Consensus.Multipaxos.create ~engine ~id ~nodes ~leader ~send ~on_apply ())
  in
  Array.iteri
    (fun id replica ->
      Geonet.Network.register network ~node:id (fun envelope ->
          Consensus.Multipaxos.handle replica ~src:envelope.Geonet.Network.src
            envelope.Geonet.Network.payload))
    replicas;
  let t =
    {
      engine;
      network;
      region_array = regions;
      replicas;
      states;
      leader;
      processing_ms;
      max_queue;
      rng = Des.Rng.split (Des.Engine.rng engine);
      queues = Hashtbl.create 4;
      in_flight = Hashtbl.create 4;
      obs = Obs.Sink.port ();
      committed = 0;
      dropped = 0;
    }
  in
  (* Loss/partition recovery: periodically re-push unacknowledged entries
     (multi-Paxos itself has no retransmission). *)
  let rec retry_loop () =
    Des.Engine.schedule engine ~delay_ms:500.0 (fun () ->
        if Geonet.Network.is_up network leader then
          Consensus.Multipaxos.resend_pending replicas.(leader);
        retry_loop ())
  in
  retry_loop ();
  t

let engine t = t.engine

let set_net_tracer t tracer = Geonet.Network.set_tracer t.network tracer

let obs_port t = t.obs

(* Record a causal event for [trace] if a sink is attached ([trace] is -1
   when the transaction arrived untraced). *)
let record_causal t ~trace event =
  if trace >= 0 then
    match Obs.Sink.tap t.obs with
    | None -> ()
    | Some sink -> Obs.Causal.record sink.Obs.Sink.causal event

let net_stats t =
  ( Geonet.Network.stats_sent t.network,
    Geonet.Network.stats_delivered t.network,
    Geonet.Network.stats_dropped t.network )

let init_entity t ~entity ~maximum =
  Array.iter (fun state -> Rsm.set_maximum state ~entity maximum) t.states

let queue_for t entity =
  match Hashtbl.find_opt t.queues entity with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues entity q;
      q

(* The leader executes read-write transactions on an entity strictly one at
   a time: an intent round then a commit round, each a majority
   replication — the Spanner-style lock/commit structure that serializes
   conflicting transactions on a hot row. *)
let rec pump t entity =
  if not (Hashtbl.mem t.in_flight entity) then begin
    let q = queue_for t entity in
    if not (Queue.is_empty q) then begin
      let txn = Queue.pop q in
      Hashtbl.replace t.in_flight entity ();
      let delta =
        match txn.request with
        | Types.Acquire { amount; _ } -> amount
        | Types.Release { amount; _ } -> -amount
        | Types.Read _ -> 0
      in
      let leader_replica = t.replicas.(t.leader) in
      let state = t.states.(t.leader) in
      let trace =
        if Des.Trace_context.is_none txn.ctx then -1
        else txn.ctx.Des.Trace_context.trace
      in
      (* Execution runs under the transaction's own context (pump may be
         called from the previous transaction's commit), so the two
         replication rounds and their WAN hops are charged to it. *)
      Des.Engine.with_context t.engine txn.ctx (fun () ->
          let t_intent = Des.Engine.now t.engine in
          record_causal t ~trace
            (Obs.Causal.Dequeued { trace; site = t.leader; ts = t_intent });
          Consensus.Multipaxos.submit leader_replica
            { Rsm.c_entity = entity; delta = 0; intent = true }
            ~on_commit:(fun () ->
              let t_commit = Des.Engine.now t.engine in
              record_causal t ~trace
                (Obs.Causal.Phase
                   {
                     trace;
                     site = t.leader;
                     name = "replicate.intent";
                     t0 = t_intent;
                     t1 = t_commit;
                   });
              Consensus.Multipaxos.submit leader_replica
                { Rsm.c_entity = entity; delta; intent = false }
                ~on_commit:(fun () ->
                  (* on_apply ran just before this callback. *)
                  let granted = Rsm.last_outcome state ~entity in
                  if granted then t.committed <- t.committed + 1;
                  Hashtbl.remove t.in_flight entity;
                  let t_done = Des.Engine.now t.engine in
                  record_causal t ~trace
                    (Obs.Causal.Phase
                       {
                         trace;
                         site = t.leader;
                         name = "replicate.commit";
                         t0 = t_commit;
                         t1 = t_done;
                       });
                  record_causal t ~trace
                    (Obs.Causal.Service
                       {
                         trace;
                         site = t.leader;
                         t0 = t_done;
                         t1 = t_done +. t.processing_ms;
                       });
                  Des.Engine.schedule t.engine ~delay_ms:t.processing_ms (fun () ->
                      txn.reply (if granted then Types.Granted else Types.Rejected));
                  pump t entity)))
    end
  end

let client_leg_ms t ~region =
  let base =
    (Geonet.Region.client_site_rtt_ms /. 2.0)
    +. Geonet.Region.one_way_ms region t.region_array.(t.leader)
  in
  base +. Des.Rng.float t.rng (0.05 *. base)

(* The replica nearest to a client region acts as its gateway: a network
   partition that separates the gateway's side from the leader makes that
   client's requests fail (Fig. 3d's "stale" minority side). *)
let gateway_for t ~region =
  let best = ref 0 in
  Array.iteri
    (fun i r ->
      if Geonet.Region.one_way_ms region r < Geonet.Region.one_way_ms region t.region_array.(!best)
      then best := i)
    t.region_array;
  !best

let submit t ~region request ~reply =
  match Types.validate request with
  | Error _ -> reply Types.Rejected
  | Ok () ->
      let there = client_leg_ms t ~region in
      let gateway = gateway_for t ~region in
      Des.Engine.schedule t.engine ~delay_ms:there (fun () ->
          if
            (not (Geonet.Network.is_up t.network t.leader))
            || not (Geonet.Network.reachable t.network gateway t.leader)
          then
            Des.Engine.schedule t.engine ~delay_ms:there (fun () -> reply Types.Unavailable)
          else begin
            let reply response =
              let back = client_leg_ms t ~region in
              Des.Engine.schedule t.engine ~delay_ms:back (fun () -> reply response)
            in
            let ctx = Des.Engine.current_context t.engine in
            let trace =
              if Des.Trace_context.is_none ctx then -1
              else ctx.Des.Trace_context.trace
            in
            let now = Des.Engine.now t.engine in
            record_causal t ~trace
              (Obs.Causal.Accepted { trace; site = gateway; ts = now });
            match request with
            | Types.Read { entity; _ } ->
                (* Reads execute at the leader without replication (§5.8). *)
                let state = t.states.(t.leader) in
                t.committed <- t.committed + 1;
                record_causal t ~trace
                  (Obs.Causal.Service
                     { trace; site = t.leader; t0 = now; t1 = now +. t.processing_ms });
                Des.Engine.schedule t.engine ~delay_ms:t.processing_ms (fun () ->
                    reply (Types.Read_result { tokens_available = Rsm.available state ~entity }))
            | Types.Acquire { entity; _ } | Types.Release { entity; _ } ->
                (* Admission control: a saturated hot row sheds load rather
                   than queueing without bound (the shed client times out
                   and is not counted as committed). *)
                let q = queue_for t entity in
                if Queue.length q >= t.max_queue then t.dropped <- t.dropped + 1
                else begin
                  record_causal t ~trace
                    (Obs.Causal.Enqueued
                       { trace; site = t.leader; label = "admission"; ts = now });
                  Queue.push { request; reply; ctx } q;
                  pump t entity
                end
          end)

let crash_site t i = Geonet.Network.crash t.network i
let recover_site t i = Geonet.Network.recover t.network i
let partition t groups = Geonet.Network.set_partition t.network groups
let heal t = Geonet.Network.clear_partition t.network

let total_acquired t ~entity = Rsm.acquired t.states.(t.leader) ~entity

let committed_txns t = t.committed

let dropped_txns t = t.dropped

let check_invariant t ~entity ~maximum =
  let acquired = total_acquired t ~entity in
  if acquired < 0 then Error (Printf.sprintf "negative acquisition: %d" acquired)
  else if acquired > maximum then
    Error (Printf.sprintf "constraint violated: %d > %d" acquired maximum)
  else Ok ()
