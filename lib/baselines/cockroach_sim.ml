module Types = Samya.Types

type txn = {
  request : Types.request;
  reply : Types.response -> unit;
  ctx : Des.Trace_context.t;
      (* causal context the transaction arrived under, restored around its
         serialized execution so its rounds are attributed to it *)
  mutable attempts : int;
}

type t = {
  engine : Des.Engine.t;
  network : Rsm.command Consensus.Raft.msg Geonet.Network.t;
  region_array : Geonet.Region.t array;
  rafts : Rsm.command Consensus.Raft.t array;
  states : Rsm.state array;
  processing_ms : float;
  max_queue : int;
  rng : Des.Rng.t;
  queues : (Types.entity, txn Queue.t) Hashtbl.t;
  in_flight : (Types.entity, unit) Hashtbl.t;
  obs : Obs.Sink.port;
  mutable committed : int;
  mutable dropped : int;
}

(* CockroachDB's replicate-where-fast placement: like Spanner, a deployment
   that cares about write latency keeps a replication majority in nearby
   regions, so the default placement mirrors MultiPaxSys's. *)
let default_regions () =
  [| Geonet.Region.Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 |]

let create ?(seed = 42L) ?regions ?(processing_ms = 0.15) ?(max_queue = 1) () =
  let regions = match regions with Some r -> r | None -> default_regions () in
  let engine = Des.Engine.create ~seed () in
  let network = Geonet.Network.create engine ~regions () in
  let n = Array.length regions in
  let nodes = List.init n (fun i -> i) in
  let states = Array.init n (fun _ -> Rsm.create_state ()) in
  let rafts =
    Array.init n (fun id ->
        let send dst msg = Geonet.Network.send network ~src:id ~dst msg in
        let on_apply _ command = Rsm.apply states.(id) command in
        (* WAN-scale timeouts (elections must outlast the slowest RTT).
           Node 0 gets the shortest timeout so the initial leaseholder
           lands in the primary region deterministically, as CockroachDB's
           lease preferences would arrange. *)
        let election_timeout_ms =
          if id = 1 then (1_000.0, 1_200.0) else (2_400.0, 3_200.0)
        in
        Consensus.Raft.create ~engine ~id ~nodes ~send ~election_timeout_ms
          ~heartbeat_ms:400.0 ~on_apply ())
  in
  Array.iteri
    (fun id raft ->
      Geonet.Network.register network ~node:id (fun envelope ->
          Consensus.Raft.handle raft ~src:envelope.Geonet.Network.src
            envelope.Geonet.Network.payload))
    rafts;
  {
    engine;
    network;
    region_array = regions;
    rafts;
    states;
    processing_ms;
    max_queue;
    rng = Des.Rng.split (Des.Engine.rng engine);
    queues = Hashtbl.create 4;
    in_flight = Hashtbl.create 4;
    obs = Obs.Sink.port ();
    committed = 0;
    dropped = 0;
  }

let engine t = t.engine

let set_net_tracer t tracer = Geonet.Network.set_tracer t.network tracer

let obs_port t = t.obs

(* Record a causal event for [trace] if a sink is attached ([trace] is -1
   when the transaction arrived untraced). *)
let record_causal t ~trace event =
  if trace >= 0 then
    match Obs.Sink.tap t.obs with
    | None -> ()
    | Some sink -> Obs.Causal.record sink.Obs.Sink.causal event

let net_stats t =
  ( Geonet.Network.stats_sent t.network,
    Geonet.Network.stats_delivered t.network,
    Geonet.Network.stats_dropped t.network )

let start t = Array.iter Consensus.Raft.start t.rafts

let init_entity t ~entity ~maximum =
  Array.iter (fun state -> Rsm.set_maximum state ~entity maximum) t.states

let leader t =
  let found = ref None in
  Array.iteri (fun i raft -> if Consensus.Raft.is_leader raft then found := Some i) t.rafts;
  !found

let queue_for t entity =
  match Hashtbl.find_opt t.queues entity with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues entity q;
      q

(* Leaseholder-serialized execution: a write intent entry then a commit
   entry, each a Raft majority replication — the same two-round structure
   as MultiPaxSys, plus Raft's bookkeeping, which is why CockroachDB lands
   slightly behind it in Table 2b. Lost leadership mid-transaction retries
   from the queue (bounded), mirroring client retries. *)
let rec pump t entity =
  if not (Hashtbl.mem t.in_flight entity) then begin
    let q = queue_for t entity in
    if not (Queue.is_empty q) then begin
      match leader t with
      | None ->
          (* Election in progress; retry shortly. *)
          Des.Engine.schedule t.engine ~delay_ms:300.0 (fun () -> pump t entity)
      | Some leader_id -> (
          let txn = Queue.pop q in
          if txn.attempts > 5 then begin
            txn.reply Types.Unavailable;
            pump t entity
          end
          else begin
            txn.attempts <- txn.attempts + 1;
            Hashtbl.replace t.in_flight entity ();
            let raft = t.rafts.(leader_id) in
            let state = t.states.(leader_id) in
            let delta =
              match txn.request with
              | Types.Acquire { amount; _ } -> amount
              | Types.Release { amount; _ } -> -amount
              | Types.Read _ -> 0
            in
            let trace =
              if Des.Trace_context.is_none txn.ctx then -1
              else txn.ctx.Des.Trace_context.trace
            in
            let retry () =
              Hashtbl.remove t.in_flight entity;
              (* Back on the queue: reopen its admission window so the
                 retry delay is charged as queueing, not left uncovered. *)
              record_causal t ~trace
                (Obs.Causal.Enqueued
                   {
                     trace;
                     site = leader_id;
                     label = "admission";
                     ts = Des.Engine.now t.engine;
                   });
              Queue.push txn q;
              Des.Engine.schedule t.engine ~delay_ms:300.0 (fun () -> pump t entity)
            in
            (* Execution runs under the transaction's own context (pump may
               be called from the previous transaction's commit), so the two
               replication rounds and their WAN hops are charged to it. *)
            Des.Engine.with_context t.engine txn.ctx (fun () ->
                let t_intent = Des.Engine.now t.engine in
                record_causal t ~trace
                  (Obs.Causal.Dequeued { trace; site = leader_id; ts = t_intent });
                let submit_commit () =
                  let t_commit = Des.Engine.now t.engine in
                  record_causal t ~trace
                    (Obs.Causal.Phase
                       {
                         trace;
                         site = leader_id;
                         name = "replicate.intent";
                         t0 = t_intent;
                         t1 = t_commit;
                       });
                  match
                    Consensus.Raft.submit raft
                      { Rsm.c_entity = entity; delta; intent = false }
                      ~on_commit:(fun () ->
                        let granted = Rsm.last_outcome state ~entity in
                        if granted then t.committed <- t.committed + 1;
                        Hashtbl.remove t.in_flight entity;
                        let t_done = Des.Engine.now t.engine in
                        record_causal t ~trace
                          (Obs.Causal.Phase
                             {
                               trace;
                               site = leader_id;
                               name = "replicate.commit";
                               t0 = t_commit;
                               t1 = t_done;
                             });
                        record_causal t ~trace
                          (Obs.Causal.Service
                             {
                               trace;
                               site = leader_id;
                               t0 = t_done;
                               t1 = t_done +. t.processing_ms;
                             });
                        Des.Engine.schedule t.engine ~delay_ms:t.processing_ms
                          (fun () ->
                            txn.reply
                              (if granted then Types.Granted else Types.Rejected));
                        pump t entity)
                  with
                  | Ok _ -> ()
                  | Error _ -> retry ()
                in
                match
                  Consensus.Raft.submit raft
                    { Rsm.c_entity = entity; delta = 0; intent = true }
                    ~on_commit:submit_commit
                with
                | Ok _ -> ()
                | Error _ -> retry ())
          end)
    end
  end

let client_leg_ms t ~region ~dst =
  let base =
    (Geonet.Region.client_site_rtt_ms /. 2.0)
    +. Geonet.Region.one_way_ms region t.region_array.(dst)
  in
  base +. Des.Rng.float t.rng (0.05 *. base)

let rec submit t ~region request ~reply =
  match Types.validate request with
  | Error _ -> reply Types.Rejected
  | Ok () -> (
      match leader t with
      | None ->
          (* No leaseholder yet: back off once, then give up. *)
          Des.Engine.schedule t.engine ~delay_ms:500.0 (fun () ->
              match leader t with
              | None -> reply Types.Unavailable
              | Some _ -> submit t ~region request ~reply)
      | Some leader_id ->
          let there = client_leg_ms t ~region ~dst:leader_id in
          Des.Engine.schedule t.engine ~delay_ms:there (fun () ->
              if not (Geonet.Network.is_up t.network leader_id) then
                Des.Engine.schedule t.engine ~delay_ms:there (fun () ->
                    reply Types.Unavailable)
              else begin
                let reply response =
                  let back = client_leg_ms t ~region ~dst:leader_id in
                  Des.Engine.schedule t.engine ~delay_ms:back (fun () -> reply response)
                in
                let ctx = Des.Engine.current_context t.engine in
                let trace =
                  if Des.Trace_context.is_none ctx then -1
                  else ctx.Des.Trace_context.trace
                in
                let now = Des.Engine.now t.engine in
                record_causal t ~trace
                  (Obs.Causal.Accepted { trace; site = leader_id; ts = now });
                match request with
                | Types.Read { entity; _ } ->
                    let state = t.states.(leader_id) in
                    t.committed <- t.committed + 1;
                    record_causal t ~trace
                      (Obs.Causal.Service
                         {
                           trace;
                           site = leader_id;
                           t0 = now;
                           t1 = now +. t.processing_ms;
                         });
                    Des.Engine.schedule t.engine ~delay_ms:t.processing_ms (fun () ->
                        reply
                          (Types.Read_result
                             { tokens_available = Rsm.available state ~entity }))
                | Types.Acquire { entity; _ } | Types.Release { entity; _ } ->
                    (* Same admission control as MultiPaxSys. *)
                    let q = queue_for t entity in
                    if Queue.length q >= t.max_queue then t.dropped <- t.dropped + 1
                    else begin
                      record_causal t ~trace
                        (Obs.Causal.Enqueued
                           { trace; site = leader_id; label = "admission"; ts = now });
                      Queue.push { request; reply; ctx; attempts = 0 } q;
                      pump t entity
                    end
              end))

let crash_site t i =
  Geonet.Network.crash t.network i;
  Consensus.Raft.pause t.rafts.(i)

let recover_site t i =
  Geonet.Network.recover t.network i;
  Consensus.Raft.resume t.rafts.(i)

let partition t groups = Geonet.Network.set_partition t.network groups
let heal t = Geonet.Network.clear_partition t.network

let total_acquired t ~entity =
  match leader t with
  | Some id -> Rsm.acquired t.states.(id) ~entity
  | None -> Rsm.acquired t.states.(0) ~entity

let committed_txns t = t.committed

let check_invariant t ~entity ~maximum =
  let acquired = total_acquired t ~entity in
  if acquired < 0 then Error (Printf.sprintf "negative acquisition: %d" acquired)
  else if acquired > maximum then
    Error (Printf.sprintf "constraint violated: %d > %d" acquired maximum)
  else Ok ()
