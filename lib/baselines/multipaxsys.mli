(** MultiPaxSys — the Spanner-like baseline (§5, baseline i).

    A geo-replicated database that runs multi-Paxos for every transaction.
    Five replicas, three of them in US regions (Spanner-style placement
    keeps a majority close to the leader for fast replication); a fixed
    leader at the central US site serializes all transactions on a given
    entity and each read-write transaction costs {e two} sequential
    majority replication rounds (write intent, then commit — the
    lock/commit structure of a Spanner read-write transaction). This is
    what makes a hot aggregate row a throughput bottleneck: conflicting
    transactions cannot pipeline.

    Reads are served at the leader without replication (§5.8).

    The constraint of Equation 1 is enforced by the replicated state
    machine itself: an acquire that would exceed the maximum is rejected at
    execution time. *)

type t

val regions : Geonet.Region.t array
(** The placement: us-west1, us-central1 (leader), us-east1, asia-east2,
    europe-west2. *)

val create :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  ?leader:int ->
  ?processing_ms:float ->
  ?max_queue:int ->
  unit ->
  t
(** [max_queue] (default 1) bounds the per-entity transaction queue at the
    leader; excess offered load is shed without a reply, so reported
    latencies reflect protocol cost rather than an unbounded open-loop
    queue (the paper's clients behave the same way: committed transactions
    carry protocol-scale latencies while the hot row saturates). *)

val engine : t -> Des.Engine.t

val set_net_tracer : t -> Geonet.Network.tracer option -> unit
(** Install a message-hop observer on the internal network (the network
    itself is not exposed); [None] removes it. *)

val obs_port : t -> Obs.Sink.port
(** Late-bound observability port. With a sink attached, traced
    transactions record their causal lifecycle (gateway acceptance,
    admission queueing, the intent and commit replication phases, leader
    service), so [explain] can attribute their latency. *)

val net_stats : t -> int * int * int
(** [(sent, delivered, dropped)] counters of the internal network. *)

val init_entity : t -> entity:Samya.Types.entity -> maximum:int -> unit

val submit :
  t ->
  region:Geonet.Region.t ->
  Samya.Types.request ->
  reply:(Samya.Types.response -> unit) ->
  unit
(** Routed to the leader; [Unavailable] if the leader is down or cannot
    commit (majority lost) within the patience window. *)

val crash_site : t -> int -> unit
val recover_site : t -> int -> unit
val partition : t -> int list list -> unit
val heal : t -> unit

val total_acquired : t -> entity:Samya.Types.entity -> int
(** Committed acquires minus releases, from the leader's state machine. *)

val committed_txns : t -> int

val dropped_txns : t -> int
(** Requests shed by admission control. *)

val check_invariant : t -> entity:Samya.Types.entity -> maximum:int -> (unit, string) result
