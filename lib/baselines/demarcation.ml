module Types = Samya.Types

type msg =
  | Borrow_request of { b_entity : Types.entity; needed : int }
  | Borrow_grant of { b_entity : Types.entity; tokens : int }

type borrow = {
  mutable to_ask : int list;
  mutable patience : Des.Engine.timer option;
}

type ctx = {
  mutable tokens_left : int;
  mutable acquired_net : int;
  queue : (Types.request * (Types.response -> unit) * Des.Trace_context.t) Queue.t;
      (* each entry keeps the causal context it arrived under, restored
         around its eventual service so lineage survives the borrow *)
  mutable borrowing : borrow option;
}

type site = {
  site_id : int;
  entities : (Types.entity, ctx) Hashtbl.t;
  mutable busy_until : float;
}

type t = {
  engine : Des.Engine.t;
  network : msg Geonet.Network.t;
  region_array : Geonet.Region.t array;
  sites : site array;
  processing_ms : float;
  borrow_patience_ms : float;
  borrow_quantum : int;
  rng : Des.Rng.t;
  obs : Obs.Sink.port;
  mutable borrow_count : int;
}

let default_regions () = Array.of_list Geonet.Region.default_five

let engine t = t.engine

let set_net_tracer t tracer = Geonet.Network.set_tracer t.network tracer

let obs_port t = t.obs

(* Record a causal event for [trace] if a sink is attached ([trace] is -1
   when the request arrived untraced). *)
let record_causal t ~trace event =
  if trace >= 0 then
    match Obs.Sink.tap t.obs with
    | None -> ()
    | Some sink -> Obs.Causal.record sink.Obs.Sink.causal event

let ambient_trace t =
  let ctx = Des.Engine.current_context t.engine in
  if Des.Trace_context.is_none ctx then -1 else ctx.Des.Trace_context.trace

let net_stats t =
  ( Geonet.Network.stats_sent t.network,
    Geonet.Network.stats_delivered t.network,
    Geonet.Network.stats_dropped t.network )

let ctx_of t site entity =
  match Hashtbl.find_opt t.sites.(site).entities entity with
  | Some ctx -> ctx
  | None ->
      let ctx =
        { tokens_left = 0; acquired_net = 0; queue = Queue.create (); borrowing = None }
      in
      Hashtbl.replace t.sites.(site).entities entity ctx;
      ctx

let init_entity t ~entity ~maximum =
  let n = Array.length t.sites in
  let share = maximum / n and extra = maximum mod n in
  Array.iteri
    (fun i _ ->
      let ctx = ctx_of t i entity in
      ctx.tokens_left <- share + (if i < extra then 1 else 0))
    t.sites

let reply_after_processing t site reply response =
  let s = t.sites.(site) in
  let now = Des.Engine.now t.engine in
  let start = Float.max now s.busy_until in
  let finish = start +. t.processing_ms in
  s.busy_until <- finish;
  let trace = ambient_trace t in
  if trace >= 0 then begin
    if start > now then
      record_causal t ~trace
        (Obs.Causal.Wait { trace; site; label = "cpu"; t0 = now; t1 = start });
    record_causal t ~trace
      (Obs.Causal.Service { trace; site; t0 = start; t1 = finish })
  end;
  Des.Engine.schedule_at t.engine ~time_ms:finish (fun () -> reply response)

(* Peers in proximity order from a borrower's region. *)
let peers_by_proximity t site =
  let region = t.region_array.(site) in
  List.init (Array.length t.sites) (fun i -> i)
  |> List.filter (fun i -> i <> site)
  |> List.sort (fun a b ->
         compare
           (Geonet.Region.one_way_ms region t.region_array.(a), a)
           (Geonet.Region.one_way_ms region t.region_array.(b), b))

let queued_acquire_total ctx =
  Queue.fold
    (fun acc (request, _, _) ->
      match request with Types.Acquire { amount; _ } -> acc + amount | _ -> acc)
    0 ctx.queue

let stop_patience borrow =
  (match borrow.patience with Some timer -> Des.Engine.cancel timer | None -> ());
  borrow.patience <- None

(* Borrow finished (satisfied, out of peers, or timed out): serve the queue;
   releases and servable acquires succeed, the rest are rejected. *)
let finish_borrow t site entity =
  let ctx = ctx_of t site entity in
  (match ctx.borrowing with Some b -> stop_patience b | None -> ());
  ctx.borrowing <- None;
  let items = Queue.length ctx.queue in
  for _ = 1 to items do
    let request, reply, rctx = Queue.pop ctx.queue in
    (* Service runs under the parked request's own context: the queue wait
       closes on its trace and the CPU window is charged to it, not to
       whichever grant delivery drained the queue. *)
    Des.Engine.with_context t.engine rctx (fun () ->
        (if not (Des.Trace_context.is_none rctx) then
           let trace = rctx.Des.Trace_context.trace in
           record_causal t ~trace
             (Obs.Causal.Dequeued { trace; site; ts = Des.Engine.now t.engine }));
        match request with
        | Types.Release { amount; _ } ->
            ctx.tokens_left <- ctx.tokens_left + amount;
            ctx.acquired_net <- ctx.acquired_net - amount;
            reply_after_processing t site reply Types.Granted
        | Types.Acquire { amount; _ } ->
            if ctx.tokens_left >= amount then begin
              ctx.tokens_left <- ctx.tokens_left - amount;
              ctx.acquired_net <- ctx.acquired_net + amount;
              reply_after_processing t site reply Types.Granted
            end
            else reply_after_processing t site reply Types.Rejected
        | Types.Read _ -> reply_after_processing t site reply Types.Rejected)
  done

let ask_next t site entity =
  let ctx = ctx_of t site entity in
  match ctx.borrowing with
  | None -> ()
  | Some borrow -> (
      let needed = queued_acquire_total ctx - ctx.tokens_left in
      if needed <= 0 then finish_borrow t site entity
      else
        match borrow.to_ask with
        | [] -> finish_borrow t site entity
        | peer :: rest ->
            borrow.to_ask <- rest;
            t.borrow_count <- t.borrow_count + 1;
            Geonet.Network.send t.network ~src:site ~dst:peer
              (Borrow_request { b_entity = entity; needed });
            stop_patience borrow;
            borrow.patience <-
              Some
                (Des.Engine.timer t.engine ~delay_ms:t.borrow_patience_ms (fun () ->
                     (* Reliable-network assumption violated (crash or
                        partition): give up to avoid blocking forever. *)
                     finish_borrow t site entity)))

let start_borrow t site entity =
  let ctx = ctx_of t site entity in
  if ctx.borrowing = None then begin
    ctx.borrowing <- Some { to_ask = peers_by_proximity t site; patience = None };
    ask_next t site entity
  end

let serve t site request reply =
  let entity = Types.request_entity request in
  let ctx = ctx_of t site entity in
  let rctx = Des.Engine.current_context t.engine in
  let trace =
    if Des.Trace_context.is_none rctx then -1 else rctx.Des.Trace_context.trace
  in
  record_causal t ~trace
    (Obs.Causal.Accepted { trace; site; ts = Des.Engine.now t.engine });
  let park () =
    record_causal t ~trace
      (Obs.Causal.Enqueued
         { trace; site; label = "borrow"; ts = Des.Engine.now t.engine });
    Queue.push (request, reply, rctx) ctx.queue
  in
  match request with
  | Types.Read _ ->
      (* Demarcation serves reads from the local escrow view only. *)
      reply_after_processing t site reply
        (Types.Read_result { tokens_available = ctx.tokens_left })
  | Types.Release { amount; _ } ->
      if ctx.borrowing <> None then park ()
      else begin
        ctx.tokens_left <- ctx.tokens_left + amount;
        ctx.acquired_net <- ctx.acquired_net - amount;
        reply_after_processing t site reply Types.Granted
      end
  | Types.Acquire { amount; _ } ->
      if ctx.borrowing <> None then park ()
      else if ctx.tokens_left >= amount then begin
        ctx.tokens_left <- ctx.tokens_left - amount;
        ctx.acquired_net <- ctx.acquired_net + amount;
        reply_after_processing t site reply Types.Granted
      end
      else begin
        park ();
        start_borrow t site entity
      end

let handle t site envelope =
  match envelope.Geonet.Network.payload with
  | Borrow_request { b_entity; needed } ->
      let ctx = ctx_of t site b_entity in
      (* Demarcation-style incremental limit adjustment: lend the need plus
         a fixed escrow quantum — not a share of the pool, which is exactly
         the inefficiency Samya's redistribution removes (§5.3). *)
      let grant = min ctx.tokens_left (needed + t.borrow_quantum) in
      ctx.tokens_left <- ctx.tokens_left - grant;
      Geonet.Network.send t.network ~src:site ~dst:envelope.Geonet.Network.src
        (Borrow_grant { b_entity; tokens = grant })
  | Borrow_grant { b_entity; tokens } ->
      let ctx = ctx_of t site b_entity in
      ctx.tokens_left <- ctx.tokens_left + tokens;
      ask_next t site b_entity

let create ?(seed = 42L) ?regions ?(processing_ms = 0.15) ?(borrow_patience_ms = 10_000.0)
    ?(borrow_quantum = 10) () =
  let regions = match regions with Some r -> r | None -> default_regions () in
  let engine = Des.Engine.create ~seed () in
  let network = Geonet.Network.create engine ~regions () in
  let sites =
    Array.init (Array.length regions) (fun site_id ->
        { site_id; entities = Hashtbl.create 4; busy_until = 0.0 })
  in
  let t =
    {
      engine;
      network;
      region_array = regions;
      sites;
      processing_ms;
      borrow_patience_ms;
      borrow_quantum;
      rng = Des.Rng.split (Des.Engine.rng engine);
      obs = Obs.Sink.port ();
      borrow_count = 0;
    }
  in
  Array.iteri
    (fun site _ ->
      Geonet.Network.register network ~node:site (fun envelope -> handle t site envelope))
    sites;
  t

let route t ~region =
  let best = ref None in
  Array.iteri
    (fun i _ ->
      if Geonet.Network.is_up t.network i then begin
        let distance = Geonet.Region.one_way_ms region t.region_array.(i) in
        match !best with
        | Some (_, d) when d <= distance -> ()
        | Some _ | None -> best := Some (i, distance)
      end)
    t.sites;
  !best

let client_leg_ms t ~region ~site =
  let base =
    (Geonet.Region.client_site_rtt_ms /. 2.0)
    +. Geonet.Region.one_way_ms region t.region_array.(site)
  in
  base +. Des.Rng.float t.rng (0.05 *. base)

let submit t ~region request ~reply =
  match Types.validate request with
  | Error _ -> reply Types.Rejected
  | Ok () -> (
      match route t ~region with
      | None -> reply Types.Unavailable
      | Some (site, _) ->
          let there = client_leg_ms t ~region ~site in
          Des.Engine.schedule t.engine ~delay_ms:there (fun () ->
              serve t site request (fun response ->
                  let back = client_leg_ms t ~region ~site in
                  Des.Engine.schedule t.engine ~delay_ms:back (fun () -> reply response))))

let crash_site t i = Geonet.Network.crash t.network i
let recover_site t i = Geonet.Network.recover t.network i
let partition t groups = Geonet.Network.set_partition t.network groups
let heal t = Geonet.Network.clear_partition t.network

let fold_entities t ~entity f =
  Array.fold_left
    (fun acc site ->
      match Hashtbl.find_opt site.entities entity with
      | Some ctx -> acc + f ctx
      | None -> acc)
    0 t.sites

let total_tokens_left t ~entity = fold_entities t ~entity (fun ctx -> ctx.tokens_left)
let total_acquired t ~entity = fold_entities t ~entity (fun ctx -> ctx.acquired_net)
let borrows t = t.borrow_count

let check_invariant t ~entity ~maximum =
  let acquired = total_acquired t ~entity in
  let left = total_tokens_left t ~entity in
  if acquired < 0 then Error (Printf.sprintf "negative acquisition: %d" acquired)
  else if acquired > maximum then
    Error (Printf.sprintf "constraint violated: %d > %d" acquired maximum)
  else if left + acquired <> maximum then
    Error
      (Printf.sprintf "tokens not conserved: left %d + acquired %d <> %d" left acquired
         maximum)
  else Ok ()
