(** CockroachDB-like baseline (§5, baseline iii).

    A geo-distributed SQL store reduced to what the paper measures: a hot
    aggregate row replicated with {e Raft} across the five evaluation
    regions. The elected Raft leader acts as the leaseholder and serializes
    transactions on the row; as in MultiPaxSys, a read-write transaction
    costs an intent entry plus a commit entry, each a Raft majority
    replication. Because the replicas straddle the planet (no US-heavy
    placement here — the data placement follows the client regions), a
    majority round is slower than MultiPaxSys's, matching the paper's
    observation that CockroachDB trails MultiPaxSys slightly (Table 2b).

    Clients route to the current leader; while an election is in progress
    requests are retried briefly and then answered [Unavailable]. *)

type t

val create :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  ?processing_ms:float ->
  ?max_queue:int ->
  unit ->
  t
(** Default regions: the MultiPaxSys-style US-majority placement (a
    latency-conscious CockroachDB deployment pins its replication quorum
    the same way). [max_queue] (default 2) is the same admission control
    as {!Multipaxsys.create}. *)

val engine : t -> Des.Engine.t

val set_net_tracer : t -> Geonet.Network.tracer option -> unit
(** Install a message-hop observer on the internal network (the network
    itself is not exposed); [None] removes it. *)

val obs_port : t -> Obs.Sink.port
(** Late-bound observability port; see {!Multipaxsys.obs_port}. *)

val net_stats : t -> int * int * int
(** [(sent, delivered, dropped)] counters of the internal network. *)

val start : t -> unit
(** Kick off Raft elections; run the engine briefly before offering load so
    a leader exists. *)

val init_entity : t -> entity:Samya.Types.entity -> maximum:int -> unit

val submit :
  t ->
  region:Geonet.Region.t ->
  Samya.Types.request ->
  reply:(Samya.Types.response -> unit) ->
  unit

val leader : t -> int option

val crash_site : t -> int -> unit
val recover_site : t -> int -> unit
val partition : t -> int list list -> unit
val heal : t -> unit

val total_acquired : t -> entity:Samya.Types.entity -> int
val committed_txns : t -> int
val check_invariant : t -> entity:Samya.Types.entity -> maximum:int -> (unit, string) result
