(* Command-line front end for the Samya reproduction.

   samya-cli list                     -- experiment index
   samya-cli run table2b [--quick]    -- run one experiment
   samya-cli run-all [--quick]        -- every experiment
   samya-cli bench [ids...] [--quick] -- the full benchmark runner
   samya-cli trace headline [--quick] -- export a Chrome trace of a run
   samya-cli explain headline         -- critical-path latency attribution
   samya-cli slo headline [--out F]   -- online SLO report (samya-slo/1)
   samya-cli report headline          -- self-contained HTML/md run report
   samya-cli perf-gate --baseline ... -- CI micro-bench regression gate
   samya-cli workload [--days N]      -- inspect the synthetic Azure trace
   samya-cli demo [--star]            -- drive a small cluster end to end
   samya-cli chaos --seed N           -- one audited nemesis run, replayable *)

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Short durations (smoke mode).")

let list_cmd =
  let run () =
    Format.printf "%-10s %-22s %s@." "id" "paper artifact" "description";
    Format.printf "%s@." (String.make 80 '-');
    List.iter
      (fun e ->
        Format.printf "%-10s %-22s %s@." e.Harness.Registry.id
          e.Harness.Registry.paper_artifact e.Harness.Registry.description)
      Harness.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run id quick engine_jobs =
    Harness.Pool.set_engine_jobs engine_jobs;
    let ctx = Harness.Lab.create () in
    match Harness.Registry.run_by_id ctx ~quick Format.std_formatter id with
    | Ok () -> 0
    | Error message ->
        Format.eprintf "error: %s@." message;
        2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id (see `list`).")
    Term.(const run $ id_arg $ quick_flag $ Cli.Args.engine_jobs)

let run_all_cmd =
  let run quick engine_jobs =
    Harness.Pool.set_engine_jobs engine_jobs;
    let ctx = Harness.Lab.create () in
    List.iter
      (fun e ->
        if e.Harness.Registry.id <> "fig3b" then
          e.Harness.Registry.run ctx ~quick Format.std_formatter)
      Harness.Registry.all;
    0
  in
  Cmd.v
    (Cmd.info "run-all" ~doc:"Run every experiment in DESIGN.md order.")
    Term.(const run $ quick_flag $ Cli.Args.engine_jobs)

let workload_cmd =
  let days =
    Arg.(value & opt int 7 & info [ "days" ] ~doc:"Days of trace to generate.")
  in
  let run days =
    let params = { Trace.Azure_trace.default_params with days } in
    let trace = Trace.Azure_trace.generate params in
    let demand = Trace.Azure_trace.demand trace in
    let usage = Trace.Azure_trace.net_usage trace in
    Format.printf "synthetic Azure-like trace: %d days, %d intervals of %.0f s@." days
      (Trace.Azure_trace.length trace) trace.Trace.Azure_trace.interval_s;
    Format.printf "demand/interval: mean %.1f, max %.0f; daily autocorrelation %.2f@."
      (Stats.Series.mean demand)
      (Array.fold_left Float.max neg_infinity demand)
      (Stats.Series.autocorrelation demand (24 * 12));
    Format.printf "tracked usage: %.0f .. %.0f tokens@."
      (Array.fold_left Float.min infinity usage)
      (Array.fold_left Float.max neg_infinity usage);
    (* Small ASCII profile of day 2. *)
    let day = 24 * 12 in
    if Trace.Azure_trace.length trace >= 2 * day then begin
      let peak =
        Float.max 1.0
          (Array.fold_left Float.max 1.0 (Array.sub demand day day))
      in
      Format.printf "@.day-2 demand profile (each row = 1 h):@.";
      for hour = 0 to 23 do
        let bucket = Array.sub demand (day + (hour * 12)) 12 in
        let m = Stats.Series.mean bucket in
        let width = int_of_float (40.0 *. m /. peak) in
        Format.printf "  %02d:00 %s %.0f@." hour (String.make (max 1 width) '#') m
      done
    end;
    0
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate and summarise the synthetic workload trace.")
    Term.(const run $ days)

let demo_cmd =
  let star = Arg.(value & flag & info [ "star" ] ~doc:"Use Avantan[*].") in
  let events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:"Print the structured protocol-event feed (elections, accepts, decisions).")
  in
  let run star events =
    let variant = if star then Samya.Config.Star else Samya.Config.Majority in
    let config = { Samya.Config.default with variant } in
    let regions = Array.of_list Geonet.Region.default_five in
    (* The hook needs the virtual clock, which only exists once the cluster
       does: close over a forward cell. *)
    let engine_cell = ref None in
    let on_protocol_event =
      if not events then None
      else
        Some
          (fun ~site ~entity:_ event ->
            let now =
              match !engine_cell with Some e -> Des.Engine.now e | None -> 0.0
            in
            Format.printf "  [%8.1f ms] site %d: %a@." now site
              Samya.Avantan_core.pp_event event)
    in
    let cluster = Samya.Cluster.create ~config ~regions ?on_protocol_event () in
    let engine = Samya.Cluster.engine cluster in
    engine_cell := Some engine;
    Samya.Cluster.init_entity cluster ~entity:"VM" ~maximum:5_000;
    Format.printf "5-site Samya cluster, M_e(VM) = 5000, variant %s@."
      (match variant with Samya.Config.Majority -> "Avantan[(n+1)/2]" | _ -> "Avantan[*]");
    let granted = ref 0 and rejected = ref 0 in
    for i = 0 to 2_499 do
      Des.Engine.schedule engine ~delay_ms:(float_of_int i *. 1.5) (fun () ->
          Samya.Cluster.submit cluster ~region:regions.(0)
            (Samya.Types.Acquire { entity = "VM"; amount = 1; deadline_ms = infinity })
            ~reply:(function
              | Samya.Types.Granted -> incr granted
              | _ -> incr rejected))
    done;
    Des.Engine.run engine ~until_ms:600_000.0;
    Format.printf
      "region %s acquired %d VMs (rejected %d) against a local share of 1000:@."
      (Geonet.Region.name regions.(0))
      !granted !rejected;
    Format.printf "redistributions moved spare tokens from the other regions:@.";
    Array.iter
      (fun site ->
        Format.printf "  site %d (%s): tokens_left=%d acquired_net=%d@."
          (Samya.Site.id site)
          (Geonet.Region.name regions.(Samya.Site.id site))
          (Samya.Site.tokens_left site ~entity:"VM")
          (Samya.Site.acquired_net site ~entity:"VM"))
      (Samya.Cluster.sites cluster);
    (match Samya.Cluster.check_invariant cluster ~entity:"VM" ~maximum:5_000 with
    | Ok () -> Format.printf "global invariant (Equation 1): OK@."
    | Error e -> Format.printf "global invariant violated: %s@." e);
    0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Drive a small cluster end to end and show redistribution.")
    Term.(const run $ star $ events)

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed for the whole run (workload, cluster, fault schedule).")
  in
  let variant =
    let variant_conv =
      Arg.enum [ ("majority", Samya.Config.Majority); ("star", Samya.Config.Star) ]
    in
    Arg.(
      value
      & opt variant_conv Samya.Config.Majority
      & info [ "variant" ] ~docv:"VARIANT" ~doc:"Avantan variant: $(b,majority) or $(b,star).")
  in
  let freeze =
    Arg.(
      value & flag
      & info [ "freeze" ]
          ~doc:"Use the legacy freeze crash model instead of crash-amnesia recovery.")
  in
  let sync =
    let sync_conv =
      Arg.enum
        [
          ("always", Storage.Durable.Sync_always);
          ("batched", Storage.Durable.Sync_batched 8);
          ("never", Storage.Durable.Sync_never);
        ]
    in
    Arg.(
      value
      & opt sync_conv Storage.Durable.Sync_always
      & info [ "sync" ] ~docv:"POLICY"
          ~doc:
            "Durability sync policy: $(b,always), $(b,batched) (group of 8) or \
             $(b,never). With $(b,never) the auditor is expected to catch \
             ballot-reuse divergence under unlucky seeds.")
  in
  let duration =
    Arg.(
      value & opt float 120.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Seconds of client traffic (virtual time).")
  in
  let sites =
    Arg.(value & opt int 5 & info [ "sites" ] ~doc:"Number of sites (>= 2).")
  in
  let run seed variant freeze sync duration sites engine_jobs =
    let report =
      Chaos.Soak.run ~n_sites:sites ~duration_ms:(duration *. 1_000.0)
        ~amnesia:(not freeze) ~sync ~engine_jobs ~variant ~seed ()
    in
    Format.printf "%a@." Chaos.Soak.pp_report report;
    if Chaos.Soak.passed report then 0 else 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run one seed-reproducible nemesis schedule (crashes, partitions, \
          drops, duplication, latency spikes) against a Samya cluster and \
          audit token conservation.")
    Term.(
      const run $ seed $ variant $ freeze $ sync $ duration $ sites
      $ Cli.Args.engine_jobs)

let () =
  let doc = "Samya (ICDE 2021) reproduction: geo-distributed aggregate data system" in
  let info = Cmd.info "samya-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            run_all_cmd;
            Cli.Bench_cmd.cmd;
            Cli.Trace_cmd.cmd;
            Cli.Explain_cmd.cmd;
            Cli.Slo_cmd.cmd;
            Cli.Report_cmd.cmd;
            Cli.Perf_gate_cmd.cmd;
            workload_cmd;
            demo_cmd;
            chaos_cmd;
          ]))
